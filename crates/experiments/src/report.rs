//! Run-ledger aggregation: the library behind the `simreport` binary.
//!
//! Parses JSONL ledgers written via `--trace-out` / `SIM_TRACE_OUT` into
//! per-technique, per-phase, shard, pipeline, histogram, and stage-profile
//! aggregates, renders them as human tables or one JSON object, and
//! schema-validates every line for `simreport --check`. Lives in the
//! library (rather than the binary) so integration tests can validate
//! ledgers in-process with [`check`] instead of shelling out.
//!
//! Footer aggregation rules (see `sim_obs::ledger`):
//! - `pipeline.*` counters are process-cumulative, so within one file only
//!   the *last* metrics footer counts; across files they are summed.
//! - Histogram (`"hist"`) and profile footers are reset by the harness at
//!   experiment boundaries, so every footer is a disjoint batch and all of
//!   them are summed — within a file and across files.

use std::collections::BTreeMap;

use sim_obs::json::{self, Json};
use sim_obs::ledger::{COST_KEYS, PROVENANCES, REQUIRED_KEYS, SCHEMA_VERSION};

/// One parsed ledger record, reduced to what the report needs.
pub struct Rec {
    /// Benchmark name.
    pub bench: String,
    /// Technique family name.
    pub technique: String,
    /// Reuse provenance (one of [`PROVENANCES`]).
    pub provenance: String,
    /// Total cost in work units.
    pub work_units: f64,
    /// Detailed instructions.
    pub detailed: u64,
    /// Functionally warmed instructions.
    pub warmed: u64,
    /// Fast-forwarded instructions.
    pub skipped: u64,
    /// Profiled instructions.
    pub profiled: u64,
    /// Whole-run wall nanoseconds.
    pub wall_ns: u64,
    /// Phase name -> (ns, insts, count).
    pub phases: Vec<(String, u64, u64, u64)>,
    /// Intra-run shard-scheduler observations, when the run sharded.
    pub shards: Option<ShardRec>,
}

/// The optional `shards` ledger object.
pub struct ShardRec {
    /// Parallel shard fan-outs inside the run.
    pub calls: u64,
    /// Largest worker count of any fan-out.
    pub workers: u64,
    /// Per-worker busy wall nanoseconds.
    pub wall_ns: Vec<u64>,
    /// Total nanoseconds the merger waited on worker joins.
    pub merge_wait_ns: u64,
}

/// One histogram, merged across every footer that carried it.
#[derive(Default, Clone)]
pub struct HistAgg {
    /// Total recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Log2 bucket index -> count (bucket `k` covers `[2^(k-1), 2^k)`).
    pub buckets: BTreeMap<u64, u64>,
}

impl HistAgg {
    /// Nearest-rank quantile estimate (`p` in `0.0..=1.0`): the upper edge
    /// of the bucket holding the target rank, clamped to the observed max.
    pub fn quantile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (&idx, &n) in &self.buckets {
            seen += n;
            if seen >= rank {
                let edge = if idx == 0 { 0 } else { (1u64 << idx) - 1 };
                return edge.min(self.max);
            }
        }
        self.max
    }
}

/// The stage-profile aggregate, summed across every profile footer.
#[derive(Default)]
pub struct ProfileAgg {
    /// Profile footers merged in.
    pub footers: u64,
    /// Total `run_detailed` wall nanoseconds.
    pub wall_ns: u64,
    /// Total pipeline iterations.
    pub iters: u64,
    /// Iterations that carried timestamp reads.
    pub sampled: u64,
    /// Profiled `run_detailed` calls.
    pub runs: u64,
    /// Stage name -> raw sampled nanoseconds.
    pub stages: BTreeMap<String, u64>,
    /// Stage name -> wall nanoseconds attributed proportionally.
    pub attributed: BTreeMap<String, u64>,
    /// Structure name -> summed occupancy over sampled iterations.
    pub occupancy: BTreeMap<String, u64>,
}

/// Everything parsed out of a set of ledger files.
#[derive(Default)]
pub struct Ledger {
    /// Run records, in file order.
    pub recs: Vec<Rec>,
    /// Summed last-per-file `pipeline.*` footer metrics.
    pub metrics: BTreeMap<String, u64>,
    /// Histograms summed across every metrics footer.
    pub hists: BTreeMap<String, HistAgg>,
    /// Stage profile summed across every profile footer.
    pub profile: ProfileAgg,
    /// Metrics footers seen.
    pub metrics_footers: u64,
}

impl Ledger {
    fn merge_hist_footer(&mut self, hists: Vec<(String, HistAgg)>) {
        for (name, h) in hists {
            let agg = self.hists.entry(name).or_default();
            agg.count += h.count;
            agg.sum += h.sum;
            agg.max = agg.max.max(h.max);
            for (idx, n) in h.buckets {
                *agg.buckets.entry(idx).or_default() += n;
            }
        }
    }
}

/// Parse and validate `files`, producing the merged [`Ledger`]. The error
/// string carries `file:line:` context.
pub fn load(files: &[String]) -> Result<Ledger, String> {
    let mut ledger = Ledger::default();
    for file in files {
        let text = std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
        // pipeline.* metrics are cumulative per process: last footer wins
        // within a file, summed across files.
        let mut file_metrics: Option<BTreeMap<String, u64>> = None;
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let ctx = |e: String| format!("{file}:{}: {e}", lineno + 1);
            match footer_kind(line) {
                Some("metrics") => {
                    let (metrics, hists) = parse_metrics_footer(line).map_err(ctx)?;
                    ledger.metrics_footers += 1;
                    file_metrics = Some(metrics);
                    ledger.merge_hist_footer(hists);
                }
                Some("profile") => {
                    parse_profile_footer(line, &mut ledger.profile).map_err(ctx)?;
                }
                Some(other) => {
                    return Err(ctx(format!("unknown footer meta {other:?}")));
                }
                None => ledger.recs.push(parse_record(line).map_err(ctx)?),
            }
        }
        for (name, v) in file_metrics.unwrap_or_default() {
            *ledger.metrics.entry(name).or_default() += v;
        }
    }
    Ok(ledger)
}

/// `simreport --canon`: the deterministic projection of a ledger, one
/// sorted line per run record. Wall time, reuse provenance, and the
/// phase/shard/footer observations are machine- and scheduling-dependent,
/// so they are dropped; what remains — bench, scale, config, technique,
/// spec, CPI, measured instructions, and the full modeled `Cost` — is
/// exactly the simulation output, which is deterministic. Two ledgers
/// describing the same runs canonicalize byte-identically no matter which
/// machine produced them, how the runs were scheduled, or which reuse
/// tier (cold, cache, store) served each result. The CI `service` job
/// uses this to compare a daemon-streamed ledger against an offline
/// `--trace-out` ledger of the same sweep.
pub fn canon(files: &[String]) -> Result<String, String> {
    load(files)?; // full schema validation first; canon implies --check
    let mut lines = Vec::new();
    for file in files {
        let text = std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
        for line in text.lines() {
            if line.trim().is_empty() || footer_kind(line).is_some() {
                continue;
            }
            let j = Json::parse(line)?;
            let s = |key: &str| json::escape(j.get(key).and_then(Json::as_str).unwrap_or(""));
            let n = |obj: &Json, key: &str| {
                json::num(obj.get(key).and_then(Json::as_f64).unwrap_or(0.0))
            };
            let cost = j.get("cost").ok_or("missing cost object")?;
            lines.push(format!(
                "{{\"bench\":\"{}\",\"scale\":{},\"cfg\":\"{}\",\"technique\":\"{}\",\
                 \"spec\":\"{}\",\"cpi\":{},\"measured_insts\":{},\"cost\":{{\
                 \"detailed\":{},\"warmed\":{},\"skipped\":{},\"profiled\":{},\
                 \"extra_runs\":{},\"work_units\":{}}}}}",
                s("bench"),
                n(&j, "scale"),
                s("cfg"),
                s("technique"),
                s("spec"),
                n(&j, "cpi"),
                n(&j, "measured_insts"),
                n(cost, "detailed"),
                n(cost, "warmed"),
                n(cost, "skipped"),
                n(cost, "profiled"),
                n(cost, "extra_runs"),
                n(cost, "work_units"),
            ));
        }
    }
    lines.sort();
    let mut out = lines.join("\n");
    if !out.is_empty() {
        out.push('\n');
    }
    Ok(out)
}

/// `simreport --check`: parse + schema-validate, returning the `ok:` line.
pub fn check(files: &[String]) -> Result<String, String> {
    let ledger = load(files)?;
    let mut line = format!("ok: {} records", ledger.recs.len());
    if ledger.metrics_footers > 0 {
        line.push_str(&format!(", {} metrics footers", ledger.metrics_footers));
    }
    if ledger.profile.footers > 0 {
        line.push_str(&format!(", {} profile footers", ledger.profile.footers));
    }
    Ok(line)
}

/// Which footer flavor a ledger line is (`None` for run records).
fn footer_kind(line: &str) -> Option<&'static str> {
    let j = Json::parse(line).ok()?;
    match j.get("meta").and_then(Json::as_str) {
        Some("metrics") => Some("metrics"),
        Some("profile") => Some("profile"),
        Some(_) => Some("?"),
        None => None,
    }
}

fn check_version(j: &Json) -> Result<(), String> {
    let v = j
        .get("v")
        .and_then(Json::as_u64)
        .ok_or("schema version is not an integer")?;
    if v != SCHEMA_VERSION {
        return Err(format!("schema version {v} (expected {SCHEMA_VERSION})"));
    }
    Ok(())
}

fn u64_field(obj: &Json, key: &str) -> Result<u64, String> {
    obj.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("{key} is not a non-negative integer"))
}

/// Counters and histograms parsed out of one metrics footer line.
type MetricsFooter = (BTreeMap<String, u64>, Vec<(String, HistAgg)>);

/// Parse and shape-validate one metrics footer line: the flat `"metrics"`
/// counter object plus the optional `"hist"` histogram object.
fn parse_metrics_footer(line: &str) -> Result<MetricsFooter, String> {
    let j = Json::parse(line)?;
    check_version(&j)?;
    let mut metrics = BTreeMap::new();
    match j.get("metrics") {
        Some(Json::Obj(kv)) => {
            for (name, value) in kv {
                metrics.insert(
                    name.clone(),
                    value
                        .as_u64()
                        .ok_or_else(|| format!("metric {name:?} is not a non-negative integer"))?,
                );
            }
        }
        _ => return Err("footer is missing the metrics object".to_string()),
    }
    let mut hists = Vec::new();
    if let Some(hist) = j.get("hist") {
        let Json::Obj(kv) = hist else {
            return Err("hist is not an object".to_string());
        };
        for (name, h) in kv {
            let mut agg = HistAgg {
                count: u64_field(h, "count")?,
                sum: u64_field(h, "sum")?,
                max: u64_field(h, "max")?,
                buckets: BTreeMap::new(),
            };
            let Some(Json::Arr(pairs)) = h.get("buckets") else {
                return Err(format!("hist {name:?} is missing the buckets array"));
            };
            let mut bucket_total = 0u64;
            for pair in pairs {
                let Json::Arr(p) = pair else {
                    return Err(format!("hist {name:?} bucket is not an [index,count] pair"));
                };
                let (Some(idx), Some(n)) = (
                    p.first().and_then(Json::as_u64),
                    p.get(1).and_then(Json::as_u64),
                ) else {
                    return Err(format!("hist {name:?} bucket is not an [index,count] pair"));
                };
                if idx >= 64 {
                    return Err(format!("hist {name:?} bucket index {idx} out of range"));
                }
                bucket_total += n;
                *agg.buckets.entry(idx).or_default() += n;
            }
            if bucket_total != agg.count {
                return Err(format!(
                    "hist {name:?} bucket counts sum to {bucket_total}, count says {}",
                    agg.count
                ));
            }
            hists.push((name.clone(), agg));
        }
    }
    Ok((metrics, hists))
}

/// Parse, shape-validate, and merge one profile footer line.
fn parse_profile_footer(line: &str, agg: &mut ProfileAgg) -> Result<(), String> {
    let j = Json::parse(line)?;
    check_version(&j)?;
    agg.footers += 1;
    agg.wall_ns += u64_field(&j, "wall_ns")?;
    agg.iters += u64_field(&j, "iters")?;
    agg.sampled += u64_field(&j, "sampled")?;
    agg.runs += u64_field(&j, "runs")?;
    for (key, into) in [
        ("stages", &mut agg.stages),
        ("attributed", &mut agg.attributed),
        ("occupancy", &mut agg.occupancy),
    ] {
        let Some(Json::Obj(kv)) = j.get(key) else {
            return Err(format!("profile footer is missing the {key} object"));
        };
        for (name, value) in kv {
            let v = value
                .as_u64()
                .ok_or_else(|| format!("{key}.{name} is not a non-negative integer"))?;
            *into.entry(name.clone()).or_default() += v;
        }
    }
    Ok(())
}

/// Parse and schema-validate one run-record line.
fn parse_record(line: &str) -> Result<Rec, String> {
    let j = Json::parse(line)?;
    for key in REQUIRED_KEYS {
        if j.get(key).is_none() {
            return Err(format!("missing required key {key:?}"));
        }
    }
    check_version(&j)?;
    let cost = j.get("cost").ok_or("missing cost object")?;
    for key in COST_KEYS {
        if cost.get(key).is_none() {
            return Err(format!("cost object missing key {key:?}"));
        }
    }
    let provenance = j
        .get("provenance")
        .and_then(Json::as_str)
        .ok_or("provenance is not a string")?;
    if !PROVENANCES.contains(&provenance) {
        return Err(format!(
            "unknown provenance {provenance:?} (expected one of {PROVENANCES:?})"
        ));
    }
    let str_field = |key: &str| -> Result<String, String> {
        j.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("{key} is not a string"))
    };
    let mut phases: Vec<(String, u64, u64, u64)> = Vec::new();
    if let Some(Json::Obj(kv)) = j.get("phases") {
        for (name, acc) in kv {
            phases.push((
                name.clone(),
                u64_field(acc, "ns")?,
                u64_field(acc, "insts")?,
                u64_field(acc, "count")?,
            ));
        }
    }
    let shards = match j.get("shards") {
        None => None,
        Some(s) => {
            let mut wall_ns = Vec::new();
            if let Some(Json::Arr(items)) = s.get("wall_ns") {
                for item in items {
                    wall_ns.push(
                        item.as_u64()
                            .ok_or("shards.wall_ns entry is not a non-negative integer")?,
                    );
                }
            }
            Some(ShardRec {
                calls: u64_field(s, "calls")?,
                workers: u64_field(s, "workers")?,
                wall_ns,
                merge_wait_ns: u64_field(s, "merge_wait_ns")?,
            })
        }
    };
    Ok(Rec {
        bench: str_field("bench")?,
        technique: str_field("technique")?,
        provenance: provenance.to_string(),
        work_units: cost
            .get("work_units")
            .and_then(Json::as_f64)
            .ok_or("work_units is not a number")?,
        detailed: u64_field(cost, "detailed")?,
        warmed: u64_field(cost, "warmed")?,
        skipped: u64_field(cost, "skipped")?,
        profiled: u64_field(cost, "profiled")?,
        wall_ns: u64_field(&j, "wall_ns")?,
        phases,
        shards,
    })
}

/// Cross-run shard aggregate: how much intra-run sharding happened and how
/// evenly the shard walls balanced.
#[derive(Default)]
struct ShardAgg {
    runs: u64,
    calls: u64,
    max_workers: u64,
    wall_ns: Vec<u64>,
    merge_wait_ns: u64,
}

/// Per-technique aggregate.
#[derive(Default)]
struct TechAgg {
    runs: u64,
    benches: std::collections::BTreeSet<String>,
    provenance: BTreeMap<String, u64>,
    work_units: f64,
    detailed: u64,
    warmed: u64,
    skipped: u64,
    profiled: u64,
    wall_ns: u64,
}

/// Per-phase aggregate (ns values kept for percentiles).
#[derive(Default)]
struct PhaseAgg {
    count: u64,
    insts: u64,
    ns: Vec<u64>,
}

fn aggregate(
    recs: &[Rec],
) -> (
    BTreeMap<String, TechAgg>,
    BTreeMap<String, PhaseAgg>,
    ShardAgg,
) {
    let mut techs: BTreeMap<String, TechAgg> = BTreeMap::new();
    let mut phases: BTreeMap<String, PhaseAgg> = BTreeMap::new();
    let mut shards = ShardAgg::default();
    for r in recs {
        let t = techs.entry(r.technique.clone()).or_default();
        t.runs += 1;
        t.benches.insert(r.bench.clone());
        *t.provenance.entry(r.provenance.clone()).or_default() += 1;
        t.work_units += r.work_units;
        t.detailed += r.detailed;
        t.warmed += r.warmed;
        t.skipped += r.skipped;
        t.profiled += r.profiled;
        t.wall_ns += r.wall_ns;
        for (name, ns, insts, count) in &r.phases {
            let p = phases.entry(name.clone()).or_default();
            p.count += count;
            p.insts += insts;
            p.ns.push(*ns);
        }
        if let Some(s) = &r.shards {
            shards.runs += 1;
            shards.calls += s.calls;
            shards.max_workers = shards.max_workers.max(s.workers);
            shards.wall_ns.extend_from_slice(&s.wall_ns);
            shards.merge_wait_ns += s.merge_wait_ns;
        }
    }
    for p in phases.values_mut() {
        p.ns.sort_unstable();
    }
    shards.wall_ns.sort_unstable();
    (techs, phases, shards)
}

/// Nearest-rank percentile of a sorted slice (`p` in 0..=100).
fn percentile(sorted: &[u64], p: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[(sorted.len() - 1) * p / 100]
}

/// Fraction of runs that reused *any* prior state (provenance != cold).
fn reuse_ratio(t: &TechAgg) -> f64 {
    let cold = t.provenance.get("cold").copied().unwrap_or(0);
    if t.runs == 0 {
        return 0.0;
    }
    (t.runs - cold) as f64 / t.runs as f64
}

/// Derived pipeline figures from the summed footer metrics: mean
/// instructions per batch refill and the trace-cache hit ratio in `[0,1]`
/// (`None` when the cache never served a lookup).
fn pipeline_derived(metrics: &BTreeMap<String, u64>) -> (u64, Option<f64>) {
    let get = |k: &str| metrics.get(k).copied().unwrap_or(0);
    let refills = get("pipeline.batch_refills");
    let insts_per_refill = get("pipeline.refill_insts")
        .checked_div(refills)
        .unwrap_or(0);
    let hits = get("pipeline.trace_cache.hit");
    let lookups = hits + get("pipeline.trace_cache.miss");
    let hit_ratio = (lookups > 0).then(|| hits as f64 / lookups as f64);
    (insts_per_refill, hit_ratio)
}

/// Render the full human-readable report.
pub fn human(ledger: &Ledger) -> String {
    use std::fmt::Write as _;
    let Ledger {
        recs,
        metrics,
        hists,
        profile,
        ..
    } = ledger;
    let (techs, phases, shards) = aggregate(recs);
    let mut out = String::new();
    let _ = writeln!(out, "run ledger: {} records", recs.len());
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{:<12} {:>5} {:>7} {:>12} {:>12} {:>12} {:>10} {:>6}  provenance",
        "technique", "runs", "benches", "work_units", "detailed", "warm+skip", "wall_ms", "reuse"
    );
    for (name, t) in &techs {
        let prov: Vec<String> = t
            .provenance
            .iter()
            .map(|(p, n)| format!("{p}:{n}"))
            .collect();
        let _ = writeln!(
            out,
            "{:<12} {:>5} {:>7} {:>12.1} {:>12} {:>12} {:>10.1} {:>5.0}%  {}",
            name,
            t.runs,
            t.benches.len(),
            t.work_units,
            t.detailed,
            t.warmed + t.skipped,
            t.wall_ns as f64 / 1e6,
            reuse_ratio(t) * 100.0,
            prov.join(" "),
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{:<20} {:>8} {:>12} {:>12} {:>12} {:>14}",
        "phase", "spans", "total_ms", "p50_us", "p95_us", "insts"
    );
    for (name, p) in &phases {
        let total: u64 = p.ns.iter().sum();
        let _ = writeln!(
            out,
            "{:<20} {:>8} {:>12.1} {:>12.1} {:>12.1} {:>14}",
            name,
            p.count,
            total as f64 / 1e6,
            percentile(&p.ns, 50) as f64 / 1e3,
            percentile(&p.ns, 95) as f64 / 1e3,
            p.insts,
        );
    }
    if shards.runs > 0 {
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "sharding: {} sharded runs, {} shard calls, max {} workers",
            shards.runs, shards.calls, shards.max_workers,
        );
        let _ = writeln!(
            out,
            "  shard wall p50/p95: {:.1}/{:.1} ms, merge wait total: {:.1} ms",
            percentile(&shards.wall_ns, 50) as f64 / 1e6,
            percentile(&shards.wall_ns, 95) as f64 / 1e6,
            shards.merge_wait_ns as f64 / 1e6,
        );
    }
    if !metrics.is_empty() {
        let get = |k: &str| metrics.get(k).copied().unwrap_or(0);
        let (insts_per_refill, hit_ratio) = pipeline_derived(metrics);
        let _ = writeln!(out);
        let _ = writeln!(out, "pipeline:");
        let _ = writeln!(
            out,
            "  batch refills: {} ({} insts, {insts_per_refill} insts/refill), idle jumps: {}",
            get("pipeline.batch_refills"),
            get("pipeline.refill_insts"),
            get("pipeline.idle_jumps"),
        );
        match hit_ratio {
            Some(r) => {
                let _ = writeln!(
                    out,
                    "  trace cache: {:.1}% hit ({} hits / {} misses), {} evictions, {} B held",
                    r * 100.0,
                    get("pipeline.trace_cache.hit"),
                    get("pipeline.trace_cache.miss"),
                    get("pipeline.trace_cache.evict"),
                    get("pipeline.trace_cache.bytes"),
                );
            }
            None => {
                let _ = writeln!(out, "  trace cache: no lookups (SIM_TRACE_CACHE=0?)");
            }
        }
        // Functional-warming kernel counters (PR 10). Emitted only when an
        // optimization actually fired, so their absence just means the
        // lanes/filter/SIMD knobs were off (or no warming ran).
        let warm_refills = get("warm.block_refills");
        let warm_filter = get("warm.filter_hits");
        let warm_simd = get("warm.simd_probes");
        if warm_refills + warm_filter + warm_simd > 0 {
            let _ = writeln!(out, "warming:");
            let _ = writeln!(
                out,
                "  block refills: {warm_refills}, line-filter hits: {warm_filter}, \
                 simd tag probes: {warm_simd}",
            );
        }
    }
    if !hists.is_empty() {
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "{:<32} {:>10} {:>14} {:>12} {:>12} {:>12}",
            "histogram", "count", "sum", "max", "~p50", "~p95"
        );
        for (name, h) in hists {
            let _ = writeln!(
                out,
                "{:<32} {:>10} {:>14} {:>12} {:>12} {:>12}",
                name,
                h.count,
                h.sum,
                h.max,
                h.quantile(0.50),
                h.quantile(0.95),
            );
        }
    }
    if profile.footers > 0 {
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "profile: {:.1} ms run_detailed wall, {} iters ({} sampled, 1/{}), {} runs",
            profile.wall_ns as f64 / 1e6,
            profile.iters,
            profile.sampled,
            profile.iters.checked_div(profile.sampled).unwrap_or(0),
            profile.runs,
        );
        for (name, ns) in &profile.attributed {
            let _ = writeln!(
                out,
                "  {:<12} {:>10.1} ms {:>5.1}%",
                name,
                *ns as f64 / 1e6,
                if profile.wall_ns > 0 {
                    *ns as f64 * 100.0 / profile.wall_ns as f64
                } else {
                    0.0
                },
            );
        }
        for (name, sum) in &profile.occupancy {
            let _ = writeln!(
                out,
                "  occupancy.{:<8} {:>8.1} mean",
                name,
                if profile.sampled > 0 {
                    *sum as f64 / profile.sampled as f64
                } else {
                    0.0
                },
            );
        }
    }
    out
}

/// Render the same aggregation as one machine-readable JSON object.
pub fn to_json(ledger: &Ledger) -> String {
    use std::fmt::Write as _;
    let Ledger {
        recs,
        metrics,
        hists,
        profile,
        ..
    } = ledger;
    let (techs, phases, shards) = aggregate(recs);
    let mut out = String::new();
    let _ = write!(out, "{{\"records\":{},\"techniques\":{{", recs.len());
    for (i, (name, t)) in techs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\"{}\":{{\"runs\":{},\"benches\":{},\"work_units\":{},\"detailed\":{},\
             \"warmed\":{},\"skipped\":{},\"profiled\":{},\"wall_ns\":{},\
             \"reuse_ratio\":{},\"provenance\":{{",
            json::escape(name),
            t.runs,
            t.benches.len(),
            json::num(t.work_units),
            t.detailed,
            t.warmed,
            t.skipped,
            t.profiled,
            t.wall_ns,
            json::num(reuse_ratio(t)),
        );
        for (j, (p, n)) in t.provenance.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", json::escape(p), n);
        }
        out.push_str("}}");
    }
    out.push_str("},\"phases\":{");
    for (i, (name, p)) in phases.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let total: u64 = p.ns.iter().sum();
        let _ = write!(
            out,
            "\"{}\":{{\"count\":{},\"insts\":{},\"ns_total\":{},\"ns_p50\":{},\"ns_p95\":{}}}",
            json::escape(name),
            p.count,
            p.insts,
            total,
            percentile(&p.ns, 50),
            percentile(&p.ns, 95),
        );
    }
    let _ = write!(
        out,
        "}},\"shards\":{{\"runs\":{},\"calls\":{},\"max_workers\":{},\
         \"wall_ns_p50\":{},\"wall_ns_p95\":{},\"merge_wait_ns\":{}}}",
        shards.runs,
        shards.calls,
        shards.max_workers,
        percentile(&shards.wall_ns, 50),
        percentile(&shards.wall_ns, 95),
        shards.merge_wait_ns,
    );
    if !metrics.is_empty() {
        let (insts_per_refill, hit_ratio) = pipeline_derived(metrics);
        out.push_str(",\"pipeline\":{");
        for (name, value) in metrics {
            let _ = write!(out, "\"{}\":{value},", json::escape(name));
        }
        let _ = write!(
            out,
            "\"insts_per_refill\":{insts_per_refill},\"trace_cache_hit_ratio\":{}}}",
            hit_ratio.map_or("null".to_string(), |r| json::num(r).to_string()),
        );
        let get = |k: &str| metrics.get(k).copied().unwrap_or(0);
        let (refills, filter, simd) = (
            get("warm.block_refills"),
            get("warm.filter_hits"),
            get("warm.simd_probes"),
        );
        if refills + filter + simd > 0 {
            let _ = write!(
                out,
                ",\"warming\":{{\"block_refills\":{refills},\"filter_hits\":{filter},\
                 \"simd_probes\":{simd}}}",
            );
        }
    }
    if !hists.is_empty() {
        out.push_str(",\"histograms\":{");
        for (i, (name, h)) in hists.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\"p95\":{}}}",
                json::escape(name),
                h.count,
                h.sum,
                h.max,
                h.quantile(0.50),
                h.quantile(0.95),
            );
        }
        out.push('}');
    }
    if profile.footers > 0 {
        let _ = write!(
            out,
            ",\"profile\":{{\"wall_ns\":{},\"iters\":{},\"sampled\":{},\"runs\":{}",
            profile.wall_ns, profile.iters, profile.sampled, profile.runs,
        );
        for (key, map) in [
            ("stages", &profile.stages),
            ("attributed", &profile.attributed),
            ("occupancy", &profile.occupancy),
        ] {
            let _ = write!(out, ",\"{key}\":{{");
            for (i, (name, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\":{v}", json::escape(name));
            }
            out.push('}');
        }
        out.push('}');
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn write_ledger(name: &str, lines: &[&str]) -> String {
        let path = std::env::temp_dir().join(format!("simreport-{}-{name}", std::process::id()));
        std::fs::write(&path, lines.join("\n")).unwrap();
        path.to_str().unwrap().to_string()
    }

    const RECORD: &str = r#"{"v":1,"bench":"gzip","scale":0.25,"cfg":"00000000deadbeef","technique":"SMARTS","spec":"SMARTS U:1000","provenance":"cold","cpi":1.25,"measured_insts":10000,"cost":{"detailed":30000,"warmed":90000,"skipped":0,"profiled":0,"extra_runs":0,"work_units":39000},"wall_ns":42,"phases":{"measure":{"ns":5,"insts":10000,"bytes":0,"count":10}}}"#;
    const METRICS_FOOTER: &str = r#"{"v":1,"meta":"metrics","metrics":{"pipeline.batch_refills":2,"pipeline.refill_insts":512},"hist":{"hist.pipeline.refill_insts":{"count":2,"sum":512,"max":300,"buckets":[[8,1],[9,1]]}}}"#;
    const PROFILE_FOOTER: &str = r#"{"v":1,"meta":"profile","wall_ns":1000,"iters":256,"sampled":2,"runs":1,"epoch":128,"stages":{"fetch":100,"issue":300},"attributed":{"fetch":250,"issue":750},"occupancy":{"rob":512}}"#;

    #[test]
    fn load_routes_records_and_footers() {
        let path = write_ledger("routes", &[RECORD, METRICS_FOOTER, PROFILE_FOOTER]);
        let ledger = load(std::slice::from_ref(&path)).expect("valid ledger loads");
        assert_eq!(ledger.recs.len(), 1);
        assert_eq!(ledger.metrics_footers, 1);
        assert_eq!(ledger.metrics.get("pipeline.batch_refills"), Some(&2));
        let h = &ledger.hists["hist.pipeline.refill_insts"];
        assert_eq!((h.count, h.sum, h.max), (2, 512, 300));
        assert_eq!(ledger.profile.footers, 1);
        assert_eq!(ledger.profile.attributed.get("issue"), Some(&750));
        let ok = check(std::slice::from_ref(&path)).expect("check passes");
        assert!(
            ok.contains("1 records")
                && ok.contains("1 metrics footers")
                && ok.contains("1 profile footers"),
            "{ok}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn footers_sum_across_batches_but_pipeline_takes_last_per_file() {
        let path = write_ledger(
            "sums",
            &[
                RECORD,
                METRICS_FOOTER,
                RECORD,
                METRICS_FOOTER,
                PROFILE_FOOTER,
                PROFILE_FOOTER,
            ],
        );
        let ledger = load(std::slice::from_ref(&path)).expect("loads");
        // pipeline.* counters: last footer per file wins.
        assert_eq!(ledger.metrics.get("pipeline.refill_insts"), Some(&512));
        // histograms and profile: disjoint batches, summed.
        assert_eq!(ledger.hists["hist.pipeline.refill_insts"].count, 4);
        assert_eq!(ledger.profile.iters, 512);
        assert_eq!(ledger.profile.stages.get("issue"), Some(&600));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn malformed_histogram_footer_is_rejected() {
        let bad = r#"{"v":1,"meta":"metrics","metrics":{},"hist":{"h":{"count":3,"sum":1,"max":1,"buckets":[[1,1]]}}}"#;
        let path = write_ledger("badhist", &[bad]);
        let err = check(std::slice::from_ref(&path)).expect_err("count/bucket mismatch is caught");
        assert!(err.contains("bucket counts sum"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn malformed_profile_footer_is_rejected() {
        let bad = r#"{"v":1,"meta":"profile","wall_ns":1,"iters":1,"sampled":1,"runs":1,"stages":{},"attributed":{}}"#;
        let path = write_ledger("badprof", &[bad]);
        let err = check(std::slice::from_ref(&path)).expect_err("missing occupancy is caught");
        assert!(err.contains("occupancy"), "{err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn report_renders_histogram_and_profile_sections() {
        let path = write_ledger("render", &[RECORD, METRICS_FOOTER, PROFILE_FOOTER]);
        let ledger = load(std::slice::from_ref(&path)).expect("loads");
        let text = human(&ledger);
        assert!(text.contains("histogram"), "{text}");
        assert!(text.contains("hist.pipeline.refill_insts"), "{text}");
        assert!(text.contains("profile:"), "{text}");
        let j = sim_obs::json::Json::parse(&to_json(&ledger)).expect("json output parses");
        assert!(j.get("histograms").is_some());
        assert_eq!(
            j.get("profile")
                .and_then(|p| p.get("attributed"))
                .and_then(|a| a.get("issue"))
                .and_then(sim_obs::json::Json::as_u64),
            Some(750)
        );
        let _ = std::fs::remove_file(&path);
    }

    /// A metrics footer carrying the PR 10 warming counters plus a new
    /// histogram key, as a lanes-on warming run emits them.
    const WARM_FOOTER: &str = r#"{"v":1,"meta":"metrics","metrics":{"warm.block_refills":40,"warm.filter_hits":900,"warm.simd_probes":1200},"hist":{"hist.tcache.probe_ns":{"count":1,"sum":80,"max":80,"buckets":[[7,1]]}}}"#;

    #[test]
    fn report_renders_warming_section_only_when_counters_fired() {
        let with = write_ledger("warm-on", &[RECORD, WARM_FOOTER]);
        let ledger = load(std::slice::from_ref(&with)).expect("loads");
        let text = human(&ledger);
        assert!(text.contains("warming:"), "{text}");
        assert!(text.contains("block refills: 40"), "{text}");
        assert!(text.contains("line-filter hits: 900"), "{text}");
        assert!(text.contains("simd tag probes: 1200"), "{text}");
        let j = sim_obs::json::Json::parse(&to_json(&ledger)).expect("json parses");
        assert_eq!(
            j.get("warming")
                .and_then(|w| w.get("filter_hits"))
                .and_then(sim_obs::json::Json::as_u64),
            Some(900)
        );
        let ok = check(std::slice::from_ref(&with)).expect("check accepts warming counters");
        assert!(ok.contains("1 metrics footers"), "{ok}");

        // Knobs off: no warm.* keys, no warming section.
        let without = write_ledger("warm-off", &[RECORD, METRICS_FOOTER]);
        let ledger = load(std::slice::from_ref(&without)).expect("loads");
        assert!(!human(&ledger).contains("warming:"));
        assert!(!to_json(&ledger).contains("\"warming\""));
        for p in [with, without] {
            let _ = std::fs::remove_file(&p);
        }
    }

    #[test]
    fn canon_strips_warming_footers_and_histogram_keys() {
        // The determinism contract behind the CI lanes-on/lanes-off diff:
        // a ledger whose footers carry the new warming counters and the
        // decode-time histogram canonicalizes identically to one with no
        // footers at all.
        let plain = write_ledger("canon-warm-a", &[RECORD]);
        let warm = write_ledger("canon-warm-b", &[RECORD, WARM_FOOTER, METRICS_FOOTER]);
        let ca = canon(std::slice::from_ref(&plain)).expect("canon plain");
        let cb = canon(std::slice::from_ref(&warm)).expect("canon warm");
        assert_eq!(ca, cb, "warming footers must not leak into canon");
        assert!(!cb.contains("warm."), "{cb}");
        for p in [plain, warm] {
            let _ = std::fs::remove_file(&p);
        }
    }

    #[test]
    fn canon_drops_volatile_fields_and_sorts() {
        // Same run, different machine noise: wall time, provenance, and
        // phase spans differ; the canonical projection must not.
        let cold = RECORD;
        let replayed = RECORD
            .replace(
                "\"provenance\":\"cold\"",
                "\"provenance\":\"store-restore\"",
            )
            .replace("\"wall_ns\":42", "\"wall_ns\":99999");
        let other = RECORD.replace("\"bench\":\"gzip\"", "\"bench\":\"art\"");

        let a = write_ledger("canon-a", &[cold, &other, METRICS_FOOTER]);
        let b = write_ledger("canon-b", &[&other, &replayed, PROFILE_FOOTER]);
        let ca = canon(std::slice::from_ref(&a)).expect("canon a");
        let cb = canon(std::slice::from_ref(&b)).expect("canon b");
        assert_eq!(ca, cb, "volatile fields must not leak into canon");
        assert_eq!(ca.lines().count(), 2, "one line per record, no footers");
        let mut lines: Vec<&str> = ca.lines().collect();
        let already = lines.clone();
        lines.sort();
        assert_eq!(lines, already, "canon output is sorted");
        assert!(ca.contains("\"cpi\":1.25"), "{ca}");
        assert!(!ca.contains("wall_ns"), "{ca}");
        assert!(!ca.contains("provenance"), "{ca}");

        // A change in an actual result is visible.
        let shifted = RECORD.replace("\"cpi\":1.25", "\"cpi\":1.5");
        let c = write_ledger("canon-c", &[&shifted, &other]);
        assert_ne!(ca, canon(std::slice::from_ref(&c)).expect("canon c"));
        for p in [a, b, c] {
            let _ = std::fs::remove_file(&p);
        }
    }

    #[test]
    fn quantile_uses_bucket_upper_edges_clamped_to_max() {
        let mut h = HistAgg {
            count: 4,
            sum: 0,
            max: 300,
            ..Default::default()
        };
        h.buckets.insert(3, 3); // values in [4,8)
        h.buckets.insert(9, 1); // values in [256,512)
        assert_eq!(h.quantile(0.50), 7);
        assert_eq!(h.quantile(1.0), 300, "clamped to observed max");
        assert_eq!(HistAgg::default().quantile(0.5), 0);
    }
}
