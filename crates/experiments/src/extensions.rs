//! Extensions beyond the paper's candidate set, each grounded in a citation
//! the paper itself makes:
//!
//! 1. **Random sampling** [Conte96] — §2 describes it ("excluded since it
//!    was rarely used"); we run it and reproduce Conte's finding that cold
//!    samples are biased and that more warm-up or samples reduces the bias.
//! 2. **Early simulation points** [Perelman03] — §6.1 notes SimPoint's
//!    checkpoint cost "can be decreased by picking early simulation points";
//!    we quantify the accuracy/cost trade.
//! 3. **Higher `max_k`** — §5.1 suggests more simulation points can fix
//!    SimPoint's underestimated memory-latency effect on gcc.

use crate::common::{note, prepared};
use crate::opts::Opts;
use characterize::report::{f, Table};
use sim_core::SimConfig;
use techniques::runner::{run_technique, PreparedBench};
use techniques::simpoint::{self, PointSelection};
use techniques::spec::SimPointWarmup;
use techniques::TechniqueSpec;

fn reference_cpi(prep: &PreparedBench, cfg: &SimConfig) -> f64 {
    run_technique(&TechniqueSpec::Reference, prep, cfg)
        .expect("reference runs")
        .metrics
        .cpi
}

/// Extension 1: random sampling bias vs warm-up length, against SMARTS.
fn random_sampling(opts: &Opts, out: &mut String) {
    note("extensions: random sampling (Conte96)");
    let bench = "gzip";
    let prep = prepared(opts, bench);
    let cfg = SimConfig::table3(2);
    let ref_cpi = reference_cpi(&prep, &cfg);
    let ref_len = prep.reference_len();

    out.push_str(&format!(
        "Extension 1: random sampling [Conte96] on {bench} (reference CPI {ref_cpi:.4})\n\n"
    ));
    let mut t = Table::new(vec!["technique", "CPI", "error %", "cost % ref"]);
    let n = 50usize;
    for (label, spec) in [
        (
            "Random n:50 U:1000 W:500 (cold)".to_string(),
            TechniqueSpec::RandomSample {
                n,
                u: 1_000,
                w: 500,
                seed: 1,
            },
        ),
        (
            "Random n:50 U:1000 W:5000".to_string(),
            TechniqueSpec::RandomSample {
                n,
                u: 1_000,
                w: 5_000,
                seed: 1,
            },
        ),
        (
            "Random n:50 U:1000 W:50000".to_string(),
            TechniqueSpec::RandomSample {
                n,
                u: 1_000,
                w: 50_000,
                seed: 1,
            },
        ),
        (
            "Random n:200 U:1000 W:5000".to_string(),
            TechniqueSpec::RandomSample {
                n: 200,
                u: 1_000,
                w: 5_000,
                seed: 1,
            },
        ),
        (
            "SMARTS U:1000 W:2000 (functional warming)".to_string(),
            TechniqueSpec::Smarts { u: 1_000, w: 2_000 },
        ),
    ] {
        let r = run_technique(&spec, &prep, &cfg).expect("runs");
        t.row(vec![
            label,
            f(r.metrics.cpi, 4),
            f((r.metrics.cpi - ref_cpi) / ref_cpi * 100.0, 2),
            f(r.cost.percent_of_reference(ref_len), 2),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nCold random samples overestimate CPI; Conte's remedies (more\n\
         warm-up, more samples) shrink the bias, and SMARTS's functional\n\
         warming eliminates it — the paper's rationale for preferring SMARTS.\n\n",
    );
}

/// Extension 2: early vs centroid simulation points.
fn early_points(opts: &Opts, out: &mut String) {
    note("extensions: early simulation points (Perelman03)");
    let bench = "gcc";
    let prep = prepared(opts, bench);
    let cfg = SimConfig::table3(2);
    let ref_cpi = reference_cpi(&prep, &cfg);
    let ref_len = prep.reference_len();
    let interval = (ref_len / 80).max(1_000);
    let program = prep.reference().clone();

    out.push_str(&format!(
        "Extension 2: early simulation points [Perelman03] on {bench}\n\
         (interval {interval}, max_k 10, reference CPI {ref_cpi:.4})\n\n"
    ));
    let mut t = Table::new(vec![
        "selection",
        "CPI",
        "error %",
        "cost % ref",
        "last point (interval #)",
    ]);
    for (name, sel) in [
        ("centroid (standard)", PointSelection::Centroid),
        ("early (Perelman03)", PointSelection::Early),
    ] {
        let plan = simpoint::plan_with_selection(&program, interval, 10, sel);
        let (m, cost) =
            simpoint::run_with_plan(&plan, &program, &cfg, SimPointWarmup::Functional(u64::MAX));
        t.row(vec![
            name.to_string(),
            f(m.cpi, 4),
            f((m.cpi - ref_cpi) / ref_cpi * 100.0, 2),
            f(cost.percent_of_reference(ref_len), 2),
            plan.points
                .last()
                .map(|p| p.index.to_string())
                .unwrap_or_default(),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');
}

/// Extension 3: more simulation points (max_k sweep) on gcc.
fn max_k_sweep(opts: &Opts, out: &mut String) {
    note("extensions: SimPoint max_k sweep");
    let bench = "gcc";
    let prep = prepared(opts, bench);
    let cfg = SimConfig::table3(2);
    let ref_cpi = reference_cpi(&prep, &cfg);
    let ref_len = prep.reference_len();
    let interval = (ref_len / 200).max(500);

    out.push_str(&format!(
        "Extension 3: SimPoint cluster budget on {bench} (interval {interval})\n\n"
    ));
    let mut t = Table::new(vec!["max_k", "chosen k", "CPI error %", "cost % ref"]);
    for max_k in [5usize, 10, 30, 100] {
        let spec = TechniqueSpec::SimPoint {
            interval,
            max_k,
            warmup: SimPointWarmup::Functional(u64::MAX),
        };
        let r = run_technique(&spec, &prep, &cfg).expect("runs");
        let k = prep.simpoint_plan(interval, max_k).chosen_k;
        t.row(vec![
            max_k.to_string(),
            k.to_string(),
            f((r.metrics.cpi - ref_cpi) / ref_cpi * 100.0, 2),
            f(r.cost.percent_of_reference(ref_len), 2),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');
}

/// Run all extensions.
pub fn run(opts: &Opts) -> String {
    let mut out = String::from("Extensions: the paper's cited-but-not-evaluated techniques\n\n");
    random_sampling(opts, &mut out);
    early_points(opts, &mut out);
    max_k_sweep(opts, &mut out);
    out
}
