//! Shared plumbing for the experiment harnesses.

use crate::opts::Opts;
use techniques::registry;
use techniques::runner::PreparedBench;
use techniques::{TechniqueKind, TechniqueSpec};

/// Prepare one benchmark at the run's stream scale.
///
/// # Panics
/// Panics if the benchmark name is not in the suite.
pub fn prepared(opts: &Opts, name: &str) -> PreparedBench {
    PreparedBench::by_name_scaled(name, opts.scale)
        .unwrap_or_else(|| panic!("benchmark {name:?} is not in the Table 2 suite"))
}

/// Prepare every benchmark of the run, fanning the (reference-program
/// generation) work over [`sim_exec::par_map`]. Results come back in
/// `opts.benchmarks` order.
///
/// # Panics
/// Panics if any benchmark name is not in the suite.
pub fn prepared_all(opts: &Opts) -> Vec<PreparedBench> {
    sim_exec::par_map(&opts.benchmarks, |name| prepared(opts, name))
}

/// The permutation set for this run: all 69 under `--full`, a
/// one-to-two-per-family representative subset otherwise.
pub fn permutations(opts: &Opts) -> Vec<TechniqueSpec> {
    if opts.full {
        registry::table1_permutations(opts.scale)
    } else {
        registry::quick_permutations(opts.scale)
    }
}

/// A single permutation per family, for the heaviest (PB) experiments in
/// quick mode.
pub fn one_per_family(opts: &Opts) -> Vec<TechniqueSpec> {
    if opts.full {
        return registry::table1_permutations(opts.scale);
    }
    let all = registry::quick_permutations(opts.scale);
    let mut out: Vec<TechniqueSpec> = Vec::new();
    for kind in TechniqueKind::ALTERNATIVES {
        if let Some(spec) = all.iter().find(|s| s.kind() == kind) {
            out.push(spec.clone());
        }
    }
    out
}

/// Group per-permutation values by technique family, preserving the
/// Figure 1 legend order.
pub fn group_by_family<T: Clone>(
    items: &[(TechniqueSpec, T)],
) -> Vec<(TechniqueKind, Vec<(TechniqueSpec, T)>)> {
    TechniqueKind::ALTERNATIVES
        .iter()
        .map(|&k| {
            (
                k,
                items
                    .iter()
                    .filter(|(s, _)| s.kind() == k)
                    .cloned()
                    .collect(),
            )
        })
        .collect()
}

/// Progress note to stderr (experiments can run for minutes).
pub fn note(msg: &str) {
    eprintln!("[simtech] {msg}");
}

/// Look up one metric by name in a [`sim_obs::metrics::snapshot`] (zero
/// when the metric has not been touched yet).
fn metric(snap: &[(String, u64)], name: &str) -> u64 {
    snap.iter().find(|(n, _)| n == name).map_or(0, |&(_, v)| v)
}

/// The one-line `--cache-stats` summary: run-cache and checkpoint-library
/// counters, read back from the observability metrics registry and
/// formatted for [`note`]. Printed to stderr so report output (stdout)
/// stays byte-identical with or without the flag.
pub fn cache_stats_summary() -> String {
    // Touch the singletons so their counters are registered even when the
    // run errored before first use.
    let _ = techniques::cache::global();
    let _ = techniques::checkpoint::global();
    let snap = sim_obs::metrics::snapshot();
    let mut line = format!(
        "run cache: {} hits / {} misses ({} cached); checkpoints: \
         arch {}/{} hits, warm {}/{} hits ({} refused, {} B held), \
         prefix-trace {}/{} hits; {} insts functionally executed",
        metric(&snap, "run_cache.hits"),
        metric(&snap, "run_cache.misses"),
        techniques::cache::global().len(),
        metric(&snap, "ckpt.arch.hits"),
        metric(&snap, "ckpt.arch.hits") + metric(&snap, "ckpt.arch.misses"),
        metric(&snap, "ckpt.warm.hits"),
        metric(&snap, "ckpt.warm.hits") + metric(&snap, "ckpt.warm.misses"),
        metric(&snap, "ckpt.warm.refusals"),
        metric(&snap, "ckpt.warm.bytes"),
        metric(&snap, "ckpt.prefix.hits"),
        metric(&snap, "ckpt.prefix.hits") + metric(&snap, "ckpt.prefix.misses"),
        sim_core::checkpoint::functional_insts(),
    );
    if let Some(store) = sim_store::global() {
        let (hits, misses, writes, evicts, corrupt) = store.counters();
        line.push_str(&format!(
            "; store ({}): {hits} hits / {misses} misses, {writes} writes, \
             {evicts} evicted, {corrupt} corrupt",
            store.dir().display()
        ));
    }
    line
}

/// The full `--metrics` report: every registered counter/gauge plus the
/// span tracer's per-phase totals, one `name = value` line each, for
/// [`note`]. Stderr-only, like [`cache_stats_summary`].
pub fn metrics_report() -> String {
    let snap = sim_obs::metrics::snapshot();
    if snap.is_empty() {
        return "metrics registry: (empty)".to_string();
    }
    let mut out = String::from("metrics registry:");
    for (name, value) in &snap {
        out.push_str(&format!("\n[simtech]   {name} = {value}"));
    }
    out
}

/// Print what the quick mode dropped, so reduced coverage is never silent.
pub fn coverage_note(opts: &Opts) -> String {
    if opts.full {
        "coverage: full Table 1 matrix (69 permutations), all requested benchmarks".to_string()
    } else {
        format!(
            "coverage: QUICK mode — representative permutation subset at scale {}; \
             dropped: remaining Table 1 permutations and {} of 10 benchmarks. \
             Re-run with --full for the complete matrix.",
            opts.scale,
            10 - opts.benchmarks.len().min(10)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_permutations_cover_each_family() {
        let opts = Opts::default();
        let one = one_per_family(&opts);
        assert_eq!(one.len(), 6);
        let kinds: Vec<TechniqueKind> = one.iter().map(|s| s.kind()).collect();
        for k in TechniqueKind::ALTERNATIVES {
            assert!(kinds.contains(&k));
        }
    }

    #[test]
    fn full_mode_returns_69() {
        let opts = Opts::from_args(["--full"]);
        assert_eq!(permutations(&opts).len(), 69);
    }

    #[test]
    fn grouping_preserves_family_order() {
        let opts = Opts::default();
        let items: Vec<(TechniqueSpec, f64)> =
            permutations(&opts).into_iter().map(|s| (s, 1.0)).collect();
        let grouped = group_by_family(&items);
        assert_eq!(grouped.len(), 6);
        assert_eq!(grouped[0].0, TechniqueKind::SimPoint);
        let total: usize = grouped.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(total, items.len());
    }

    #[test]
    fn coverage_note_mentions_mode() {
        let q = coverage_note(&Opts::default());
        assert!(q.contains("QUICK"));
        let f = coverage_note(&Opts::from_args(["--full"]));
        assert!(f.contains("full"));
    }
}
