//! Command-line options shared by every experiment binary.

/// Parsed experiment options.
#[derive(Debug, Clone, PartialEq)]
pub struct Opts {
    /// Run the complete matrix (all benchmarks, all 69 permutations, full
    /// design sizes) instead of the quick representative subset.
    pub full: bool,
    /// Stream/parameter scale. Quick default 0.25, full default 1.0.
    pub scale: f64,
    /// Benchmarks to run. Quick default: gzip, gcc, mcf, art.
    pub benchmarks: Vec<String>,
    /// Enhancement selector for the Figure 6 experiment ("nlp" or "tc").
    pub enhancement: String,
    /// Worker-thread count for the simulation fan-out (`--jobs`). `None`
    /// defers to `SIM_JOBS` or the machine's available parallelism;
    /// `Some(1)` is the exact serial path. Output is byte-identical at any
    /// job count.
    pub jobs: Option<usize>,
    /// Print run-cache and checkpoint-library hit/miss counters to stderr
    /// after the experiment (`--cache-stats`, or `SIM_CACHE_STATS=1`).
    pub cache_stats: bool,
    /// Checkpoint-library override (`--checkpoints on|off`). `None` defers
    /// to `SIM_CHECKPOINTS` (default on). Toggling never changes report
    /// output, only how much redundant prefix execution is avoided.
    pub checkpoints: Option<bool>,
}

impl Default for Opts {
    fn default() -> Self {
        Opts::from_args(std::iter::empty::<String>())
    }
}

impl Opts {
    /// Parse from an argument iterator (without the program name).
    ///
    /// Recognized flags: `--full`, `--quick`, `--scale <f>`,
    /// `--bench <a,b,c>`, `--enhancement <nlp|tc>`, `--jobs <n>`,
    /// `--cache-stats`, `--checkpoints <on|off>`.
    pub fn from_args<I, S>(args: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut full = false;
        let mut scale: Option<f64> = None;
        let mut benchmarks: Option<Vec<String>> = None;
        let mut enhancement = "nlp".to_string();
        let mut jobs: Option<usize> = None;
        let mut cache_stats = std::env::var("SIM_CACHE_STATS").is_ok_and(|v| v == "1");
        let mut checkpoints: Option<bool> = None;

        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_ref() {
                "--full" => full = true,
                "--quick" => full = false,
                "--scale" => {
                    let v = it.next().expect("--scale needs a value");
                    scale = Some(v.as_ref().parse().expect("--scale must be a number"));
                }
                "--bench" | "--benchmarks" => {
                    let v = it.next().expect("--bench needs a comma-separated list");
                    benchmarks = Some(
                        v.as_ref()
                            .split(',')
                            .map(|s| s.trim().to_string())
                            .collect(),
                    );
                }
                "--enhancement" => {
                    let v = it.next().expect("--enhancement needs nlp or tc");
                    enhancement = v.as_ref().to_lowercase();
                }
                "--jobs" => {
                    let v = it.next().expect("--jobs needs a thread count");
                    let n: usize = v.as_ref().parse().expect("--jobs must be an integer");
                    assert!(n >= 1, "--jobs must be at least 1, got {n}");
                    jobs = Some(n);
                }
                "--cache-stats" => cache_stats = true,
                "--checkpoints" => {
                    let v = it.next().expect("--checkpoints needs on or off");
                    checkpoints = Some(match v.as_ref() {
                        "on" | "1" | "true" => true,
                        "off" | "0" | "false" => false,
                        other => panic!("--checkpoints must be on or off, got {other:?}"),
                    });
                }
                other => {
                    panic!(
                        "unknown flag {other:?} \
                         (try --full, --scale, --bench, --enhancement, --jobs, \
                         --cache-stats, --checkpoints)"
                    )
                }
            }
        }

        let scale = scale.unwrap_or(if full { 1.0 } else { 0.25 });
        assert!(
            scale > 0.0 && scale.is_finite(),
            "--scale must be a positive number, got {scale}"
        );
        let benchmarks = benchmarks.unwrap_or_else(|| {
            if full {
                workloads::suite()
                    .iter()
                    .map(|b| b.name.to_string())
                    .collect()
            } else {
                vec![
                    "gzip".to_string(),
                    "gcc".to_string(),
                    "mcf".to_string(),
                    "art".to_string(),
                ]
            }
        });
        Opts {
            full,
            scale,
            benchmarks,
            enhancement,
            jobs,
            cache_stats,
            checkpoints,
        }
    }

    /// Install this run's worker-thread count into [`sim_exec`]: the
    /// explicit `--jobs` flag when given, else whatever `SIM_JOBS` / the
    /// machine defaults resolve to. Call once per harness invocation.
    pub fn install_jobs(&self) {
        if let Some(n) = self.jobs {
            sim_exec::set_jobs(n);
        }
    }

    /// Install all process-wide settings this run carries: the worker
    /// count ([`Opts::install_jobs`]) and the checkpoint-library override
    /// (`--checkpoints`). Call once per harness invocation.
    pub fn install(&self) {
        self.install_jobs();
        if let Some(on) = self.checkpoints {
            techniques::checkpoint::set_enabled(on);
        }
    }

    /// Parse from the process arguments.
    pub fn from_env() -> Self {
        Opts::from_args(std::env::args().skip(1))
    }

    /// One-line description of the run mode, printed by every experiment.
    pub fn describe(&self) -> String {
        format!(
            "mode={} scale={} benchmarks=[{}]",
            if self.full { "FULL" } else { "quick" },
            self.scale,
            self.benchmarks.join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_quick() {
        let o = Opts::default();
        assert!(!o.full);
        assert_eq!(o.scale, 0.25);
        assert_eq!(o.benchmarks.len(), 4);
        assert_eq!(o.enhancement, "nlp");
    }

    #[test]
    fn full_uses_all_benchmarks_and_unit_scale() {
        let o = Opts::from_args(["--full"]);
        assert!(o.full);
        assert_eq!(o.scale, 1.0);
        assert_eq!(o.benchmarks.len(), 10);
    }

    #[test]
    fn explicit_flags_override() {
        let o = Opts::from_args(["--full", "--scale", "0.5", "--bench", "gcc,mcf"]);
        assert_eq!(o.scale, 0.5);
        assert_eq!(o.benchmarks, vec!["gcc", "mcf"]);
    }

    #[test]
    fn enhancement_flag() {
        let o = Opts::from_args(["--enhancement", "TC"]);
        assert_eq!(o.enhancement, "tc");
    }

    #[test]
    fn jobs_flag_parses() {
        assert_eq!(Opts::default().jobs, None);
        let o = Opts::from_args(["--jobs", "4"]);
        assert_eq!(o.jobs, Some(4));
    }

    #[test]
    #[should_panic(expected = "--jobs must be at least 1")]
    fn zero_jobs_is_rejected() {
        let _ = Opts::from_args(["--jobs", "0"]);
    }

    #[test]
    fn cache_stats_and_checkpoints_flags_parse() {
        let o = Opts::default();
        assert_eq!(o.checkpoints, None);
        let o = Opts::from_args(["--cache-stats", "--checkpoints", "off"]);
        assert!(o.cache_stats);
        assert_eq!(o.checkpoints, Some(false));
        let o = Opts::from_args(["--checkpoints", "on"]);
        assert_eq!(o.checkpoints, Some(true));
        assert!(!o.cache_stats || std::env::var("SIM_CACHE_STATS").is_ok());
    }

    #[test]
    #[should_panic(expected = "--checkpoints must be on or off")]
    fn bad_checkpoints_value_is_rejected() {
        let _ = Opts::from_args(["--checkpoints", "maybe"]);
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn unknown_flags_panic() {
        let _ = Opts::from_args(["--bogus"]);
    }

    #[test]
    #[should_panic(expected = "positive number")]
    fn zero_scale_is_rejected() {
        let _ = Opts::from_args(["--scale", "0"]);
    }
}
