//! Command-line options shared by every experiment binary.

/// Parsed experiment options.
#[derive(Debug, Clone, PartialEq)]
pub struct Opts {
    /// Run the complete matrix (all benchmarks, all 69 permutations, full
    /// design sizes) instead of the quick representative subset.
    pub full: bool,
    /// Stream/parameter scale. Quick default 0.25, full default 1.0.
    pub scale: f64,
    /// Benchmarks to run. Quick default: gzip, gcc, mcf, art.
    pub benchmarks: Vec<String>,
    /// Enhancement selector for the Figure 6 experiment ("nlp" or "tc").
    pub enhancement: String,
    /// Worker-thread count for the simulation fan-out (`--jobs`). `None`
    /// defers to `SIM_JOBS` or the machine's available parallelism;
    /// `Some(1)` is the exact serial path. Output is byte-identical at any
    /// job count.
    pub jobs: Option<usize>,
    /// Intra-run shard count for sampled techniques (`--shards`). `None`
    /// defers to `SIM_SHARDS` or the automatic default (the worker-thread
    /// count); `Some(1)` is the exact serial path. Output is byte-identical
    /// at any shard count.
    pub shards: Option<usize>,
    /// Print the observability metrics registry (run-cache and
    /// checkpoint-library counters, pool timings, span totals) to stderr
    /// after the experiment — even when it exits early with an error
    /// (`--metrics`, its older alias `--cache-stats`, or
    /// `SIM_CACHE_STATS=1`).
    pub metrics: bool,
    /// Run-ledger sink: one JSONL record per technique run is appended to
    /// this file (`--trace-out <file>`, or `SIM_TRACE_OUT`). Buffered and
    /// flushed (sorted) at harness exit. Report output never changes.
    pub trace_out: Option<String>,
    /// Checkpoint-library override (`--checkpoints on|off`). `None` defers
    /// to `SIM_CHECKPOINTS` (default on). Toggling never changes report
    /// output, only how much redundant prefix execution is avoided.
    pub checkpoints: Option<bool>,
    /// Persistent artifact-store directory (`--store <dir>`, or
    /// `SIM_STORE`). Run results and checkpoint tiers are persisted there
    /// and reused by later *processes*; a warm-store rerun prints
    /// byte-identical reports. `None` keeps all reuse in-memory.
    pub store: Option<String>,
    /// Stage-profiler folded-stacks output file (`--profile-out <file>`,
    /// or `SIM_PROFILE_OUT`). Setting it implies `SIM_PROFILE=1`; the
    /// accumulated per-stage attribution is written in folded-stacks text
    /// (`run_detailed;stage count`) at harness exit, ready for flamegraph
    /// tooling. Report output never changes.
    pub profile_out: Option<String>,
}

impl Default for Opts {
    fn default() -> Self {
        Opts::from_args(std::iter::empty::<String>())
    }
}

impl Opts {
    /// Parse from an argument iterator (without the program name).
    ///
    /// Recognized flags: `--full`, `--quick`, `--scale <f>`,
    /// `--bench <a,b,c>`, `--enhancement <nlp|tc>`, `--jobs <n>`,
    /// `--shards <n>`, `--metrics` (alias `--cache-stats`),
    /// `--trace-out <file>`, `--checkpoints <on|off>`, `--store <dir>`,
    /// `--profile-out <file>`.
    pub fn from_args<I, S>(args: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut full = false;
        let mut scale: Option<f64> = None;
        let mut benchmarks: Option<Vec<String>> = None;
        let mut enhancement = "nlp".to_string();
        let mut jobs: Option<usize> = None;
        let mut shards: Option<usize> = None;
        let mut metrics = sim_obs::env_flag("SIM_CACHE_STATS", false);
        let mut trace_out: Option<String> = sim_obs::env_val("SIM_TRACE_OUT");
        let mut checkpoints: Option<bool> = None;
        let mut store: Option<String> = sim_obs::env_val("SIM_STORE");
        let mut profile_out: Option<String> = sim_obs::env_val("SIM_PROFILE_OUT");

        let mut it = args.into_iter();
        while let Some(a) = it.next() {
            match a.as_ref() {
                "--full" => full = true,
                "--quick" => full = false,
                "--scale" => {
                    let v = it.next().expect("--scale needs a value");
                    scale = Some(v.as_ref().parse().expect("--scale must be a number"));
                }
                "--bench" | "--benchmarks" => {
                    let v = it.next().expect("--bench needs a comma-separated list");
                    benchmarks = Some(
                        v.as_ref()
                            .split(',')
                            .map(|s| s.trim().to_string())
                            .collect(),
                    );
                }
                "--enhancement" => {
                    let v = it.next().expect("--enhancement needs nlp or tc");
                    enhancement = v.as_ref().to_lowercase();
                }
                "--jobs" => {
                    let v = it.next().expect("--jobs needs a thread count");
                    let n: usize = v.as_ref().parse().expect("--jobs must be an integer");
                    assert!(n >= 1, "--jobs must be at least 1, got {n}");
                    jobs = Some(n);
                }
                "--shards" => {
                    let v = it.next().expect("--shards needs a shard count");
                    let n: usize = v.as_ref().parse().expect("--shards must be an integer");
                    assert!(n >= 1, "--shards must be at least 1, got {n}");
                    shards = Some(n);
                }
                "--metrics" | "--cache-stats" => metrics = true,
                "--trace-out" => {
                    let v = it.next().expect("--trace-out needs a file path");
                    trace_out = Some(v.as_ref().to_string());
                }
                "--checkpoints" => {
                    let v = it.next().expect("--checkpoints needs on or off");
                    checkpoints = Some(match v.as_ref() {
                        "on" | "1" | "true" => true,
                        "off" | "0" | "false" => false,
                        other => panic!("--checkpoints must be on or off, got {other:?}"),
                    });
                }
                "--store" => {
                    let v = it.next().expect("--store needs a directory path");
                    store = Some(v.as_ref().to_string());
                }
                "--profile-out" => {
                    let v = it.next().expect("--profile-out needs a file path");
                    profile_out = Some(v.as_ref().to_string());
                }
                other => {
                    panic!(
                        "unknown flag {other:?} \
                         (try --full, --scale, --bench, --enhancement, --jobs, \
                         --shards, --metrics, --trace-out, --checkpoints, --store, \
                         --profile-out)"
                    )
                }
            }
        }

        let scale = scale.unwrap_or(if full { 1.0 } else { 0.25 });
        assert!(
            scale > 0.0 && scale.is_finite(),
            "--scale must be a positive number, got {scale}"
        );
        let benchmarks = benchmarks.unwrap_or_else(|| {
            if full {
                workloads::suite()
                    .iter()
                    .map(|b| b.name.to_string())
                    .collect()
            } else {
                vec![
                    "gzip".to_string(),
                    "gcc".to_string(),
                    "mcf".to_string(),
                    "art".to_string(),
                ]
            }
        });
        Opts {
            full,
            scale,
            benchmarks,
            enhancement,
            jobs,
            shards,
            metrics,
            trace_out,
            checkpoints,
            store,
            profile_out,
        }
    }

    /// Install this run's worker-thread count into [`sim_exec`]: the
    /// explicit `--jobs` flag when given, else whatever `SIM_JOBS` / the
    /// machine defaults resolve to. Call once per harness invocation.
    pub fn install_jobs(&self) {
        if let Some(n) = self.jobs {
            sim_exec::set_jobs(n);
        }
    }

    /// Install all process-wide settings this run carries: the worker
    /// count ([`Opts::install_jobs`]), the intra-run shard count
    /// (`--shards`), the checkpoint-library override
    /// (`--checkpoints`), the persistent artifact store (`--store`), and
    /// the observability switches — span tracing is turned on when either
    /// `--metrics` or `--trace-out` is active, the run-ledger sink is
    /// opened for `--trace-out`, and the stage profiler is forced on when
    /// `--profile-out` asks for a folded-stacks dump. Call once per
    /// harness invocation
    /// (re-installing the same sink path is a no-op, so `simtech all` may
    /// call this per experiment).
    ///
    /// # Panics
    /// Panics if the `--trace-out` sink or the `--store` directory cannot
    /// be opened.
    pub fn install(&self) {
        self.install_jobs();
        if let Some(n) = self.shards {
            sim_exec::set_shards(n);
        }
        if let Some(on) = self.checkpoints {
            techniques::checkpoint::set_enabled(on);
        }
        if let Some(dir) = &self.store {
            sim_store::install_global(std::path::Path::new(dir))
                .unwrap_or_else(|e| panic!("cannot open --store directory {dir:?}: {e}"));
        }
        if self.metrics || self.trace_out.is_some() {
            sim_obs::trace::set_enabled(true);
        }
        if let Some(path) = &self.trace_out {
            sim_obs::ledger::set_sink(path)
                .unwrap_or_else(|e| panic!("cannot open --trace-out sink {path:?}: {e}"));
        }
        // Both the ledger and the store buffer writes; a ctrl-c mid-sweep
        // would normally drop that tail. Arm the flush guard whenever
        // there is buffered state worth saving, so an interrupted run
        // keeps every record and artifact completed so far.
        if self.trace_out.is_some() || self.store.is_some() {
            sim_serve::signal::install_flush_guard();
        }
        // Asking for a folded-stacks dump implies the profiler itself:
        // `--profile-out` without `SIM_PROFILE=1` would dump nothing.
        if self.profile_out.is_some() {
            sim_obs::profile::set_enabled(Some(true));
        }
    }

    /// Parse from the process arguments.
    pub fn from_env() -> Self {
        Opts::from_args(std::env::args().skip(1))
    }

    /// One-line description of the run mode, printed by every experiment.
    pub fn describe(&self) -> String {
        format!(
            "mode={} scale={} benchmarks=[{}]",
            if self.full { "FULL" } else { "quick" },
            self.scale,
            self.benchmarks.join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_quick() {
        let o = Opts::default();
        assert!(!o.full);
        assert_eq!(o.scale, 0.25);
        assert_eq!(o.benchmarks.len(), 4);
        assert_eq!(o.enhancement, "nlp");
    }

    #[test]
    fn full_uses_all_benchmarks_and_unit_scale() {
        let o = Opts::from_args(["--full"]);
        assert!(o.full);
        assert_eq!(o.scale, 1.0);
        assert_eq!(o.benchmarks.len(), 10);
    }

    #[test]
    fn explicit_flags_override() {
        let o = Opts::from_args(["--full", "--scale", "0.5", "--bench", "gcc,mcf"]);
        assert_eq!(o.scale, 0.5);
        assert_eq!(o.benchmarks, vec!["gcc", "mcf"]);
    }

    #[test]
    fn enhancement_flag() {
        let o = Opts::from_args(["--enhancement", "TC"]);
        assert_eq!(o.enhancement, "tc");
    }

    #[test]
    fn jobs_flag_parses() {
        assert_eq!(Opts::default().jobs, None);
        let o = Opts::from_args(["--jobs", "4"]);
        assert_eq!(o.jobs, Some(4));
    }

    #[test]
    #[should_panic(expected = "--jobs must be at least 1")]
    fn zero_jobs_is_rejected() {
        let _ = Opts::from_args(["--jobs", "0"]);
    }

    #[test]
    fn shards_flag_parses() {
        assert_eq!(Opts::default().shards, None);
        let o = Opts::from_args(["--shards", "3"]);
        assert_eq!(o.shards, Some(3));
    }

    #[test]
    #[should_panic(expected = "--shards must be at least 1")]
    fn zero_shards_is_rejected() {
        let _ = Opts::from_args(["--shards", "0"]);
    }

    #[test]
    fn cache_stats_and_checkpoints_flags_parse() {
        let o = Opts::default();
        assert_eq!(o.checkpoints, None);
        let o = Opts::from_args(["--cache-stats", "--checkpoints", "off"]);
        assert!(o.metrics, "--cache-stats stays an alias for --metrics");
        assert_eq!(o.checkpoints, Some(false));
        let o = Opts::from_args(["--checkpoints", "on"]);
        assert_eq!(o.checkpoints, Some(true));
        assert!(!o.metrics || std::env::var("SIM_CACHE_STATS").is_ok());
    }

    #[test]
    fn metrics_and_trace_out_flags_parse() {
        let o = Opts::from_args(["--metrics"]);
        assert!(o.metrics);
        assert!(o.trace_out.is_none() || std::env::var("SIM_TRACE_OUT").is_ok());
        let o = Opts::from_args(["--trace-out", "/tmp/ledger.jsonl"]);
        assert_eq!(o.trace_out.as_deref(), Some("/tmp/ledger.jsonl"));
        assert!(!o.metrics || std::env::var("SIM_CACHE_STATS").is_ok());
    }

    #[test]
    fn store_flag_parses() {
        let o = Opts::from_args(["--store", "/tmp/simstore"]);
        assert_eq!(o.store.as_deref(), Some("/tmp/simstore"));
        let o = Opts::default();
        assert!(o.store.is_none() || std::env::var("SIM_STORE").is_ok());
    }

    #[test]
    fn profile_out_flag_parses() {
        let o = Opts::from_args(["--profile-out", "/tmp/profile.folded"]);
        assert_eq!(o.profile_out.as_deref(), Some("/tmp/profile.folded"));
        let o = Opts::default();
        assert!(o.profile_out.is_none() || std::env::var("SIM_PROFILE_OUT").is_ok());
    }

    #[test]
    #[should_panic(expected = "--checkpoints must be on or off")]
    fn bad_checkpoints_value_is_rejected() {
        let _ = Opts::from_args(["--checkpoints", "maybe"]);
    }

    #[test]
    #[should_panic(expected = "unknown flag")]
    fn unknown_flags_panic() {
        let _ = Opts::from_args(["--bogus"]);
    }

    #[test]
    #[should_panic(expected = "positive number")]
    fn zero_scale_is_rejected() {
        let _ = Opts::from_args(["--scale", "0"]);
    }
}
