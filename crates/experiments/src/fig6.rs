//! Figure 6: differences in apparent speedup between each technique and the
//! reference input set for an enhancement (next-line prefetching by default,
//! trivial-computation simplification with `--enhancement tc`), on gcc with
//! processor configuration #2.

use crate::common::{coverage_note, note, permutations, prepared};
use crate::opts::Opts;
use characterize::report::{f, Table};
use characterize::speedup::{apparent_speedup, speedup_delta, Enhancement, SpeedupDelta};
use sim_core::SimConfig;
use techniques::registry::fig6_simpoint_extra;
use techniques::TechniqueSpec;

/// Benchmark and configuration Figure 6 uses.
pub const FIG6_BENCH: &str = "gcc";

/// Parse the enhancement selector.
pub fn enhancement(opts: &Opts) -> Enhancement {
    match opts.enhancement.as_str() {
        "tc" => Enhancement::TrivialComputation,
        _ => Enhancement::NextLinePrefetch,
    }
}

/// Run the Figure 6 experiment.
pub fn compute(opts: &Opts) -> (f64, Vec<SpeedupDelta>) {
    let cfg = SimConfig::table3(2);
    let enh = enhancement(opts);
    let prep = prepared(opts, FIG6_BENCH);
    note(&format!(
        "fig6: {} on {FIG6_BENCH}, config #2: reference speedup",
        enh.name()
    ));
    let ref_speedup =
        apparent_speedup(&TechniqueSpec::Reference, &prep, &cfg, enh).expect("reference runs");
    let mut specs = permutations(opts);
    specs.push(fig6_simpoint_extra(opts.scale));
    // Permutations fan out; results come back in spec order.
    let deltas: Vec<SpeedupDelta> = sim_exec::par_map(&specs, |spec| {
        note(&format!("fig6: {}", spec.label()));
        speedup_delta(spec, &prep, &cfg, enh, ref_speedup)
    })
    .into_iter()
    .flatten()
    .collect();
    (ref_speedup, deltas)
}

/// Render the Figure 6 report.
pub fn render(opts: &Opts, ref_speedup: f64, deltas: &[SpeedupDelta]) -> String {
    let enh = enhancement(opts);
    let mut out = String::new();
    out.push_str(&format!(
        "Figure 6. Differences in Speedups due to {} between Each Technique\n\
         and the reference Input Set (Technique − reference, percentage\n\
         points) with {FIG6_BENCH} and Processor Configuration #2\n\n\
         reference speedup: {:.4}x\n\n",
        enh.name(),
        ref_speedup
    ));
    out.push_str(&coverage_note(opts));
    out.push_str("\n\n");
    let mut t = Table::new(vec![
        "permutation",
        "apparent speedup",
        "delta (pct points)",
    ]);
    for d in deltas {
        t.row(vec![
            d.label.clone(),
            f(d.technique_speedup, 4),
            f(d.delta_points, 2),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// Compute and render.
pub fn run(opts: &Opts) -> String {
    let (r, d) = compute(opts);
    render(opts, r, &d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enhancement_selector_parses() {
        let nlp = Opts::from_args(["--enhancement", "nlp"]);
        assert_eq!(enhancement(&nlp), Enhancement::NextLinePrefetch);
        let tc = Opts::from_args(["--enhancement", "tc"]);
        assert_eq!(enhancement(&tc), Enhancement::TrivialComputation);
        // Unknown selectors fall back to NLP, the paper's headline case.
        let odd = Opts::from_args(["--enhancement", "whatever"]);
        assert_eq!(enhancement(&odd), Enhancement::NextLinePrefetch);
    }
}
