//! Figure 1: normalized Euclidean distance from the reference input set for
//! each type of simulation technique, under the Plackett–Burman processor
//! bottleneck characterization (mean with min/max error bars).

use crate::common::{coverage_note, group_by_family, note, one_per_family, prepared_all};
use crate::opts::Opts;
use characterize::bottleneck::{normalized_rank_distance, pb_ranks, standard_design, summarize};
use characterize::report::{bar, f, Table};
use sim_core::config::pb as pbcfg;
use sim_core::SimConfig;
use simstats::pb::PbDesign;
use techniques::TechniqueSpec;

/// The PB design for the run mode: 88-run foldover when full, 44-run
/// otherwise.
pub fn design(opts: &Opts) -> PbDesign {
    if opts.full {
        standard_design()
    } else {
        PbDesign::new(pbcfg::NUM_PARAMETERS)
    }
}

/// Per-benchmark, per-permutation normalized distances.
pub type Fig1Data = Vec<(String, Vec<(TechniqueSpec, f64)>)>;

/// Run the Figure 1 experiment.
pub fn compute(opts: &Opts) -> Fig1Data {
    let d = design(opts);
    let base = SimConfig::default();
    let specs = one_per_family(opts);
    let preps = prepared_all(opts);
    let mut data = Vec::new();
    for (bench, prep) in opts.benchmarks.iter().zip(&preps) {
        note(&format!(
            "fig1: {bench}: reference PB ranks ({} runs)",
            d.num_runs()
        ));
        let ref_ranks =
            pb_ranks(&TechniqueSpec::Reference, prep, &d, &base).expect("reference always runs");
        // Permutations are independent: fan them out. Each inner PB-row
        // fan then runs serially inside its worker (the pool is not
        // nested), and the row order keeps the output deterministic.
        let rows: Vec<(TechniqueSpec, f64)> = sim_exec::par_map(&specs, |spec| {
            note(&format!("fig1: {bench}: {}", spec.label()));
            pb_ranks(spec, prep, &d, &base)
                .map(|ranks| (spec.clone(), normalized_rank_distance(&ref_ranks, &ranks)))
        })
        .into_iter()
        .flatten()
        .collect();
        data.push((bench.clone(), rows));
    }
    data
}

/// Render the Figure 1 report.
pub fn render(opts: &Opts, data: &Fig1Data) -> String {
    let mut out = String::new();
    out.push_str(
        "Figure 1. Normalized Euclidean Distance from the reference Input Set\n\
         (performance-bottleneck characterization; 0 = identical bottlenecks,\n\
         100 = completely out-of-phase ranks)\n\n",
    );
    out.push_str(&coverage_note(opts));
    out.push_str("\n\n");
    for (bench, rows) in data {
        out.push_str(&format!("--- {bench} ---\n"));
        let mut t = Table::new(vec!["technique", "mean", "min", "max", "n", "plot"]);
        for (kind, members) in group_by_family(rows) {
            let ds: Vec<f64> = members.iter().map(|(_, d)| *d).collect();
            if ds.is_empty() {
                continue;
            }
            let s = summarize(&ds);
            t.row(vec![
                kind.name().to_string(),
                f(s.mean, 1),
                f(s.min, 1),
                f(s.max, 1),
                s.count.to_string(),
                bar(s.mean, 60.0, 30),
            ]);
        }
        out.push_str(&t.render());
        out.push('\n');
        let mut pt = Table::new(vec!["permutation", "distance"]);
        for (spec, dval) in rows {
            pt.row(vec![spec.label(), f(*dval, 2)]);
        }
        out.push_str(&pt.render());
        out.push('\n');
    }
    out
}

/// Compute and render.
pub fn run(opts: &Opts) -> String {
    let data = compute(opts);
    render(opts, &data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn design_size_matches_mode() {
        assert_eq!(design(&Opts::default()).num_runs(), 44);
        assert_eq!(design(&Opts::from_args(["--full"])).num_runs(), 88);
    }

    #[test]
    fn render_handles_empty_rows() {
        let opts = Opts::default();
        let data: Fig1Data = vec![("ghost".to_string(), vec![])];
        let s = render(&opts, &data);
        assert!(s.contains("ghost"));
    }
}
