//! Figures 3 and 4: simulation speed versus accuracy trade-off graphs
//! (Figure 3 = gcc, Figure 4 = mcf).

use crate::common::{coverage_note, note, permutations, prepared};
use crate::opts::Opts;
use characterize::configs::{envelope_configs, quick_configs};
use characterize::report::{f, Table};
use characterize::svat::{reference_cpis, svat_points, SvatPoint};
use sim_core::SimConfig;

/// The configuration sweep for SvAT: the 48-config envelope under `--full`,
/// an 8-config subset otherwise.
pub fn svat_configs(opts: &Opts) -> Vec<SimConfig> {
    if opts.full {
        envelope_configs()
    } else {
        quick_configs()
    }
}

/// Run the SvAT experiment for one benchmark.
pub fn compute(opts: &Opts, bench: &str) -> Vec<SvatPoint> {
    let configs = svat_configs(opts);
    note(&format!(
        "svat: {bench}: reference across {} configurations",
        configs.len()
    ));
    let prep = prepared(opts, bench);
    let refs = reference_cpis(&prep, &configs);
    let specs = permutations(opts);
    note(&format!("svat: {bench}: {} permutations", specs.len()));
    svat_points(&specs, &prep, &configs, &refs)
}

/// Render an SvAT report (one figure).
pub fn render(opts: &Opts, bench: &str, figure: &str, points: &[SvatPoint]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{figure}. Simulation Speed versus Accuracy Trade-Off Graph of {bench}\n\
         (speed = % of reference simulation time in work units; accuracy =\n\
         Manhattan distance of CPI vectors across the configuration sweep;\n\
         lower-left is better)\n\n"
    ));
    out.push_str(&coverage_note(opts));
    out.push_str("\n\n");
    let mut sorted: Vec<&SvatPoint> = points.iter().collect();
    sorted.sort_by(|a, b| {
        a.speed_pct
            .partial_cmp(&b.speed_pct)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut t = Table::new(vec![
        "technique",
        "permutation",
        "speed (% ref)",
        "accuracy (L1 CPI dist)",
    ]);
    for p in sorted {
        t.row(vec![
            p.kind.name().to_string(),
            p.label.clone(),
            f(p.speed_pct, 2),
            f(p.accuracy, 4),
        ]);
    }
    out.push_str(&t.render());

    // Family summary: best point per family (the paper's conclusion rows).
    out.push('\n');
    let mut t = Table::new(vec!["technique", "best accuracy", "at speed (%)"]);
    for kind in techniques::TechniqueKind::ALTERNATIVES {
        let best = points.iter().filter(|p| p.kind == kind).min_by(|a, b| {
            a.accuracy
                .partial_cmp(&b.accuracy)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        if let Some(p) = best {
            t.row(vec![
                kind.name().to_string(),
                f(p.accuracy, 4),
                f(p.speed_pct, 2),
            ]);
        }
    }
    out.push_str(&t.render());
    out
}

/// Figure 3 (gcc).
pub fn run_fig3(opts: &Opts) -> String {
    let pts = compute(opts, "gcc");
    render(opts, "gcc", "Figure 3", &pts)
}

/// Figure 4 (mcf).
pub fn run_fig4(opts: &Opts) -> String {
    let pts = compute(opts, "mcf");
    render(opts, "mcf", "Figure 4", &pts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::opts::Opts;

    #[test]
    fn config_sweep_sizes_match_mode() {
        assert_eq!(svat_configs(&Opts::default()).len(), 8);
        assert_eq!(svat_configs(&Opts::from_args(["--full"])).len(), 48);
    }
}
