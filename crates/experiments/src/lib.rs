//! # experiments
//!
//! Harnesses that regenerate every table and figure of the paper:
//!
//! | Binary | Paper item |
//! |---|---|
//! | `table1` | Table 1 — candidate technique permutations |
//! | `table2` | Table 2 — benchmarks and input sets |
//! | `table3` | Table 3 — architectural configurations |
//! | `fig1` | Figure 1 — PB bottleneck distances per technique |
//! | `fig2` | Figure 2 — SimPoint−SMARTS prefix distances |
//! | `fig3` / `fig4` | Figures 3–4 — speed vs accuracy (gcc / mcf) |
//! | `fig5` | Figure 5 — CPI-error histograms (config dependence) |
//! | `fig6` | Figure 6 — enhancement speedup error (NLP / TC) |
//! | `fig7` | Figure 7 — technique-selection decision tree |
//! | `profile_char` | §5.2 — execution-profile (χ²) characterization |
//! | `arch_char` | §4.3/§5.2 — architectural-level characterization |
//! | `simtech` | run any/all of the above |
//!
//! Every binary accepts `--quick` (default: representative subset, scale
//! 0.25, four benchmarks — and prints what was dropped) and `--full` (the
//! complete matrix at full scale), plus `--scale <f>`, `--bench <list>`,
//! `--jobs <n>` (worker threads for the simulation fan-out; output is
//! byte-identical at any job count), `--shards <n>` (intra-run interval
//! shards for sampled techniques; output is byte-identical at any shard
//! count), `--checkpoints <on|off>` (the
//! fast-forward checkpoint library; reports are byte-identical either
//! way), `--metrics` (alias `--cache-stats`; print the observability
//! registry to stderr, even on an early error exit), and
//! `--trace-out <file>` / `SIM_TRACE_OUT` (append one JSONL run-ledger
//! record per technique run; aggregate with the `simreport` binary).

#![warn(missing_docs)]

pub mod ablations;
pub mod bench;
pub mod charexp;
pub mod coherence;
pub mod common;
pub mod extensions;
pub mod fig1;
pub mod fig2;
pub mod fig34;
pub mod fig5;
pub mod fig6;
pub mod opts;
pub mod report;
pub mod tables;

use opts::Opts;

/// Names of all experiments, in paper order.
pub const EXPERIMENTS: [&str; 15] = [
    "table1",
    "table2",
    "table3",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "profile_char",
    "arch_char",
    "ablations",
    "extensions",
    "coherence",
];

/// Run one experiment by name and return its report.
///
/// Observability epilogue (the `--metrics` report and the run-ledger
/// flush) runs from a drop guard, so it happens even when the experiment
/// panics partway — an early error exit still reports what was counted.
///
/// # Panics
/// Panics on an unknown experiment name.
pub fn run_experiment(name: &str, opts: &Opts) -> String {
    opts.install();
    let _guard = ObsGuard {
        metrics: opts.metrics,
        profile_out: opts.profile_out.clone(),
    };
    run_dispatch(name, opts)
}

/// Prints the metrics report, dumps the stage profile, and flushes the run
/// ledger on drop — on the normal exit path *and* during an experiment
/// panic unwind. It then resets the per-experiment observability state
/// (histograms, profiler accumulation, shard observations) so the next
/// experiment in the same process starts from zero — the PR 4
/// inflated-totals bug class, extended to the new accumulators.
struct ObsGuard {
    metrics: bool,
    profile_out: Option<String>,
}

impl Drop for ObsGuard {
    fn drop(&mut self) {
        if self.metrics {
            common::note(&common::cache_stats_summary());
            common::note(&common::metrics_report());
            for line in sim_obs::profile::snapshot().report_lines() {
                common::note(&line);
            }
        }
        if let Some(path) = &self.profile_out {
            if let Err(e) = dump_folded_profile(path) {
                common::note(&format!("profile-out dump failed: {e}"));
            }
        }
        // Persist write-behind artifacts before the process exits so the
        // next invocation starts warm (also on the panic-unwind path).
        if let Some(store) = sim_store::global() {
            if let Err(e) = store.flush() {
                common::note(&format!("artifact-store flush failed: {e}"));
            }
        }
        if let Err(e) = sim_obs::ledger::flush() {
            common::note(&format!("run-ledger flush failed: {e}"));
        }
        // Drop any observations the last run left behind so a later
        // experiment in the same process starts from zero. The ledger
        // footers above already captured this experiment's state, so
        // per-experiment batches in a shared `--trace-out` file are
        // disjoint and `simreport` may sum them.
        sim_exec::reset_shard_state();
        sim_obs::metrics::reset_histograms();
        sim_obs::profile::reset();
    }
}

/// Append this experiment's folded-stacks profile to `path`, truncating
/// once per process so reruns replace (not accumulate into) a stale file
/// while `simtech all` still collects every experiment. Duplicate stack
/// lines are fine: flamegraph tooling sums them.
fn dump_folded_profile(path: &str) -> std::io::Result<()> {
    use std::io::Write;
    use std::sync::atomic::{AtomicBool, Ordering};
    static APPEND: AtomicBool = AtomicBool::new(false);
    let append = APPEND.swap(true, Ordering::Relaxed);
    let mut opts = std::fs::OpenOptions::new();
    opts.create(true).write(true);
    if append {
        opts.append(true);
    } else {
        opts.truncate(true);
    }
    let mut f = opts.open(path)?;
    f.write_all(sim_obs::profile::snapshot().folded().as_bytes())
}

fn run_dispatch(name: &str, opts: &Opts) -> String {
    match name {
        "table1" => tables::table1(opts.scale),
        "table2" => tables::table2(),
        "table3" => tables::table3(),
        "fig1" => fig1::run(opts),
        "fig2" => fig2::run(opts),
        "fig3" => fig34::run_fig3(opts),
        "fig4" => fig34::run_fig4(opts),
        "fig5" => fig5::run(opts),
        "fig6" => fig6::run(opts),
        "fig7" => {
            let mut s = characterize::decision::render_tree();
            s.push('\n');
            s.push_str(
                "Example recommendations:\n\
                 - accuracy first                -> SMARTS\n\
                 - speed vs accuracy (deadline)  -> SimPoint\n\
                 - zero simulator changes        -> Reduced input sets\n",
            );
            s
        }
        "profile_char" => charexp::run_profile(opts),
        "arch_char" => charexp::run_arch(opts),
        "ablations" => ablations::run(opts),
        "extensions" => extensions::run(opts),
        "coherence" => coherence::run(opts),
        other => panic!("unknown experiment {other:?}; known: {EXPERIMENTS:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_experiments_render() {
        let opts = Opts::default();
        for name in ["table1", "table2", "table3", "fig7"] {
            let s = run_experiment(name, &opts);
            assert!(!s.is_empty(), "{name} produced no output");
        }
    }

    #[test]
    #[should_panic(expected = "unknown experiment")]
    fn unknown_experiment_panics() {
        let _ = run_experiment("fig99", &Opts::default());
    }
}
