//! Aggregate run-ledger JSONL files (written via `--trace-out` /
//! `SIM_TRACE_OUT`) into per-technique and per-phase tables.
//!
//! ```text
//! simreport [--check] [--json] <ledger.jsonl>...
//! ```
//!
//! - default: human-readable tables — per technique: runs, benchmarks,
//!   reuse provenance counts and reuse ratio, cost totals, wall time;
//!   per phase: span count, total/p50/p95 wall time, instructions; plus a
//!   "pipeline" section when the ledger carries metrics footers
//!   (`pipeline.*` hot-loop counters: batch refills with the derived
//!   insts-per-refill, idle jumps, and the trace-cache hit ratio).
//! - `--check`: validate every line against the versioned schema
//!   (required keys, cost keys, provenance vocabulary; metrics footers
//!   against the footer shape) and exit non-zero on the first violation.
//!   Prints `ok: N records` on success.
//! - `--json`: the same aggregation as one machine-readable JSON object
//!   (used to assemble `BENCH_obs.json`).
//!
//! Metrics footers are cumulative per process, so within one file only the
//! *last* footer counts; across files (separate harness processes) the
//! footers are summed.

use std::collections::BTreeMap;
use std::process::ExitCode;

use sim_obs::json::{self, Json};
use sim_obs::ledger::{COST_KEYS, PROVENANCES, REQUIRED_KEYS, SCHEMA_VERSION};

/// One parsed ledger record, reduced to what the report needs.
struct Rec {
    bench: String,
    technique: String,
    provenance: String,
    work_units: f64,
    detailed: u64,
    warmed: u64,
    skipped: u64,
    profiled: u64,
    wall_ns: u64,
    /// phase name -> (ns, insts, count)
    phases: Vec<(String, u64, u64, u64)>,
    /// Intra-run shard-scheduler observations, when the run sharded.
    shards: Option<ShardRec>,
}

/// The optional `shards` ledger object.
struct ShardRec {
    calls: u64,
    workers: u64,
    wall_ns: Vec<u64>,
    merge_wait_ns: u64,
}

fn main() -> ExitCode {
    let mut check = false;
    let mut as_json = false;
    let mut files: Vec<String> = Vec::new();
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--check" => check = true,
            "--json" => as_json = true,
            "--help" | "-h" => {
                eprintln!("usage: simreport [--check] [--json] <ledger.jsonl>...");
                return ExitCode::SUCCESS;
            }
            f => files.push(f.to_string()),
        }
    }
    if files.is_empty() {
        eprintln!("usage: simreport [--check] [--json] <ledger.jsonl>...");
        return ExitCode::from(2);
    }

    let mut recs: Vec<Rec> = Vec::new();
    // Summed last-per-file metrics footers (cumulative within a process).
    let mut metrics: BTreeMap<String, u64> = BTreeMap::new();
    let mut footers = 0u64;
    for file in &files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("simreport: cannot read {file}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let mut file_metrics: Option<BTreeMap<String, u64>> = None;
        for (lineno, line) in text.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let parsed = if is_metrics_footer(line) {
                parse_footer(line).map(|m| {
                    footers += 1;
                    file_metrics = Some(m);
                })
            } else {
                parse_record(line).map(|r| recs.push(r))
            };
            if let Err(e) = parsed {
                eprintln!("simreport: {file}:{}: {e}", lineno + 1);
                return ExitCode::FAILURE;
            }
        }
        for (name, v) in file_metrics.unwrap_or_default() {
            *metrics.entry(name).or_default() += v;
        }
    }

    if check {
        match footers {
            0 => println!("ok: {} records", recs.len()),
            n => println!("ok: {} records, {n} metrics footers", recs.len()),
        }
        return ExitCode::SUCCESS;
    }
    if as_json {
        println!("{}", summarize_json(&recs, &metrics));
    } else {
        print!("{}", summarize_human(&recs, &metrics));
    }
    ExitCode::SUCCESS
}

/// Whether a ledger line is a metrics footer rather than a run record.
fn is_metrics_footer(line: &str) -> bool {
    Json::parse(line)
        .ok()
        .and_then(|j| j.get("meta").and_then(Json::as_str).map(str::to_string))
        .as_deref()
        == Some("metrics")
}

/// Parse and shape-validate one metrics footer line.
fn parse_footer(line: &str) -> Result<BTreeMap<String, u64>, String> {
    let j = Json::parse(line)?;
    let v = j
        .get("v")
        .and_then(Json::as_u64)
        .ok_or("footer schema version is not an integer")?;
    if v != SCHEMA_VERSION {
        return Err(format!("schema version {v} (expected {SCHEMA_VERSION})"));
    }
    let mut out = BTreeMap::new();
    match j.get("metrics") {
        Some(Json::Obj(kv)) => {
            for (name, value) in kv {
                out.insert(
                    name.clone(),
                    value
                        .as_u64()
                        .ok_or_else(|| format!("metric {name:?} is not a non-negative integer"))?,
                );
            }
        }
        _ => return Err("footer is missing the metrics object".to_string()),
    }
    Ok(out)
}

/// Parse and schema-validate one ledger line.
fn parse_record(line: &str) -> Result<Rec, String> {
    let j = Json::parse(line)?;
    for key in REQUIRED_KEYS {
        if j.get(key).is_none() {
            return Err(format!("missing required key {key:?}"));
        }
    }
    let v = j
        .get("v")
        .and_then(Json::as_u64)
        .ok_or("schema version is not an integer")?;
    if v != SCHEMA_VERSION {
        return Err(format!("schema version {v} (expected {SCHEMA_VERSION})"));
    }
    let cost = j.get("cost").ok_or("missing cost object")?;
    for key in COST_KEYS {
        if cost.get(key).is_none() {
            return Err(format!("cost object missing key {key:?}"));
        }
    }
    let provenance = j
        .get("provenance")
        .and_then(Json::as_str)
        .ok_or("provenance is not a string")?;
    if !PROVENANCES.contains(&provenance) {
        return Err(format!(
            "unknown provenance {provenance:?} (expected one of {PROVENANCES:?})"
        ));
    }
    let str_field = |key: &str| -> Result<String, String> {
        j.get(key)
            .and_then(Json::as_str)
            .map(str::to_string)
            .ok_or_else(|| format!("{key} is not a string"))
    };
    let u64_field = |obj: &Json, key: &str| -> Result<u64, String> {
        obj.get(key)
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("{key} is not a non-negative integer"))
    };
    let mut phases: Vec<(String, u64, u64, u64)> = Vec::new();
    if let Some(Json::Obj(kv)) = j.get("phases") {
        for (name, acc) in kv {
            phases.push((
                name.clone(),
                u64_field(acc, "ns")?,
                u64_field(acc, "insts")?,
                u64_field(acc, "count")?,
            ));
        }
    }
    let shards = match j.get("shards") {
        None => None,
        Some(s) => {
            let mut wall_ns = Vec::new();
            if let Some(Json::Arr(items)) = s.get("wall_ns") {
                for item in items {
                    wall_ns.push(
                        item.as_u64()
                            .ok_or("shards.wall_ns entry is not a non-negative integer")?,
                    );
                }
            }
            Some(ShardRec {
                calls: u64_field(s, "calls")?,
                workers: u64_field(s, "workers")?,
                wall_ns,
                merge_wait_ns: u64_field(s, "merge_wait_ns")?,
            })
        }
    };
    Ok(Rec {
        bench: str_field("bench")?,
        technique: str_field("technique")?,
        provenance: provenance.to_string(),
        work_units: cost
            .get("work_units")
            .and_then(Json::as_f64)
            .ok_or("work_units is not a number")?,
        detailed: u64_field(cost, "detailed")?,
        warmed: u64_field(cost, "warmed")?,
        skipped: u64_field(cost, "skipped")?,
        profiled: u64_field(cost, "profiled")?,
        wall_ns: u64_field(&j, "wall_ns")?,
        phases,
        shards,
    })
}

/// Cross-run shard aggregate: how much intra-run sharding happened and how
/// evenly the shard walls balanced.
#[derive(Default)]
struct ShardAgg {
    /// Records that carried a `shards` object.
    runs: u64,
    /// Total `shard_map` fan-outs across those records.
    calls: u64,
    /// Widest worker count seen.
    max_workers: u64,
    /// Pooled per-worker busy walls (sorted by [`aggregate`]).
    wall_ns: Vec<u64>,
    /// Total time the merging caller waited on worker joins.
    merge_wait_ns: u64,
}

/// Per-technique aggregate.
#[derive(Default)]
struct TechAgg {
    runs: u64,
    benches: std::collections::BTreeSet<String>,
    provenance: BTreeMap<String, u64>,
    work_units: f64,
    detailed: u64,
    warmed: u64,
    skipped: u64,
    profiled: u64,
    wall_ns: u64,
}

/// Per-phase aggregate (ns values kept for percentiles).
#[derive(Default)]
struct PhaseAgg {
    count: u64,
    insts: u64,
    ns: Vec<u64>,
}

fn aggregate(
    recs: &[Rec],
) -> (
    BTreeMap<String, TechAgg>,
    BTreeMap<String, PhaseAgg>,
    ShardAgg,
) {
    let mut techs: BTreeMap<String, TechAgg> = BTreeMap::new();
    let mut phases: BTreeMap<String, PhaseAgg> = BTreeMap::new();
    let mut shards = ShardAgg::default();
    for r in recs {
        let t = techs.entry(r.technique.clone()).or_default();
        t.runs += 1;
        t.benches.insert(r.bench.clone());
        *t.provenance.entry(r.provenance.clone()).or_default() += 1;
        t.work_units += r.work_units;
        t.detailed += r.detailed;
        t.warmed += r.warmed;
        t.skipped += r.skipped;
        t.profiled += r.profiled;
        t.wall_ns += r.wall_ns;
        for (name, ns, insts, count) in &r.phases {
            let p = phases.entry(name.clone()).or_default();
            p.count += count;
            p.insts += insts;
            p.ns.push(*ns);
        }
        if let Some(s) = &r.shards {
            shards.runs += 1;
            shards.calls += s.calls;
            shards.max_workers = shards.max_workers.max(s.workers);
            shards.wall_ns.extend_from_slice(&s.wall_ns);
            shards.merge_wait_ns += s.merge_wait_ns;
        }
    }
    for p in phases.values_mut() {
        p.ns.sort_unstable();
    }
    shards.wall_ns.sort_unstable();
    (techs, phases, shards)
}

/// Nearest-rank percentile of a sorted slice (`p` in 0..=100).
fn percentile(sorted: &[u64], p: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[(sorted.len() - 1) * p / 100]
}

/// Fraction of runs that reused *any* prior state (provenance != cold).
fn reuse_ratio(t: &TechAgg) -> f64 {
    let cold = t.provenance.get("cold").copied().unwrap_or(0);
    if t.runs == 0 {
        return 0.0;
    }
    (t.runs - cold) as f64 / t.runs as f64
}

/// Derived pipeline figures from the summed footer metrics: mean
/// instructions per batch refill and the trace-cache hit ratio in `[0,1]`
/// (`None` when the cache never served a lookup).
fn pipeline_derived(metrics: &BTreeMap<String, u64>) -> (u64, Option<f64>) {
    let get = |k: &str| metrics.get(k).copied().unwrap_or(0);
    let refills = get("pipeline.batch_refills");
    let insts_per_refill = get("pipeline.refill_insts")
        .checked_div(refills)
        .unwrap_or(0);
    let hits = get("pipeline.trace_cache.hit");
    let lookups = hits + get("pipeline.trace_cache.miss");
    let hit_ratio = (lookups > 0).then(|| hits as f64 / lookups as f64);
    (insts_per_refill, hit_ratio)
}

fn summarize_human(recs: &[Rec], metrics: &BTreeMap<String, u64>) -> String {
    use std::fmt::Write as _;
    let (techs, phases, shards) = aggregate(recs);
    let mut out = String::new();
    let _ = writeln!(out, "run ledger: {} records", recs.len());
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{:<12} {:>5} {:>7} {:>12} {:>12} {:>12} {:>10} {:>6}  provenance",
        "technique", "runs", "benches", "work_units", "detailed", "warm+skip", "wall_ms", "reuse"
    );
    for (name, t) in &techs {
        let prov: Vec<String> = t
            .provenance
            .iter()
            .map(|(p, n)| format!("{p}:{n}"))
            .collect();
        let _ = writeln!(
            out,
            "{:<12} {:>5} {:>7} {:>12.1} {:>12} {:>12} {:>10.1} {:>5.0}%  {}",
            name,
            t.runs,
            t.benches.len(),
            t.work_units,
            t.detailed,
            t.warmed + t.skipped,
            t.wall_ns as f64 / 1e6,
            reuse_ratio(t) * 100.0,
            prov.join(" "),
        );
    }
    let _ = writeln!(out);
    let _ = writeln!(
        out,
        "{:<20} {:>8} {:>12} {:>12} {:>12} {:>14}",
        "phase", "spans", "total_ms", "p50_us", "p95_us", "insts"
    );
    for (name, p) in &phases {
        let total: u64 = p.ns.iter().sum();
        let _ = writeln!(
            out,
            "{:<20} {:>8} {:>12.1} {:>12.1} {:>12.1} {:>14}",
            name,
            p.count,
            total as f64 / 1e6,
            percentile(&p.ns, 50) as f64 / 1e3,
            percentile(&p.ns, 95) as f64 / 1e3,
            p.insts,
        );
    }
    if shards.runs > 0 {
        let _ = writeln!(out);
        let _ = writeln!(
            out,
            "sharding: {} sharded runs, {} shard calls, max {} workers",
            shards.runs, shards.calls, shards.max_workers,
        );
        let _ = writeln!(
            out,
            "  shard wall p50/p95: {:.1}/{:.1} ms, merge wait total: {:.1} ms",
            percentile(&shards.wall_ns, 50) as f64 / 1e6,
            percentile(&shards.wall_ns, 95) as f64 / 1e6,
            shards.merge_wait_ns as f64 / 1e6,
        );
    }
    if !metrics.is_empty() {
        let get = |k: &str| metrics.get(k).copied().unwrap_or(0);
        let (insts_per_refill, hit_ratio) = pipeline_derived(metrics);
        let _ = writeln!(out);
        let _ = writeln!(out, "pipeline:");
        let _ = writeln!(
            out,
            "  batch refills: {} ({} insts, {insts_per_refill} insts/refill), idle jumps: {}",
            get("pipeline.batch_refills"),
            get("pipeline.refill_insts"),
            get("pipeline.idle_jumps"),
        );
        match hit_ratio {
            Some(r) => {
                let _ = writeln!(
                    out,
                    "  trace cache: {:.1}% hit ({} hits / {} misses), {} evictions, {} B held",
                    r * 100.0,
                    get("pipeline.trace_cache.hit"),
                    get("pipeline.trace_cache.miss"),
                    get("pipeline.trace_cache.evict"),
                    get("pipeline.trace_cache.bytes"),
                );
            }
            None => {
                let _ = writeln!(out, "  trace cache: no lookups (SIM_TRACE_CACHE=0?)");
            }
        }
    }
    out
}

fn summarize_json(recs: &[Rec], metrics: &BTreeMap<String, u64>) -> String {
    use std::fmt::Write as _;
    let (techs, phases, shards) = aggregate(recs);
    let mut out = String::new();
    let _ = write!(out, "{{\"records\":{},\"techniques\":{{", recs.len());
    for (i, (name, t)) in techs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\"{}\":{{\"runs\":{},\"benches\":{},\"work_units\":{},\"detailed\":{},\
             \"warmed\":{},\"skipped\":{},\"profiled\":{},\"wall_ns\":{},\
             \"reuse_ratio\":{},\"provenance\":{{",
            json::escape(name),
            t.runs,
            t.benches.len(),
            json::num(t.work_units),
            t.detailed,
            t.warmed,
            t.skipped,
            t.profiled,
            t.wall_ns,
            json::num(reuse_ratio(t)),
        );
        for (j, (p, n)) in t.provenance.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", json::escape(p), n);
        }
        out.push_str("}}");
    }
    out.push_str("},\"phases\":{");
    for (i, (name, p)) in phases.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let total: u64 = p.ns.iter().sum();
        let _ = write!(
            out,
            "\"{}\":{{\"count\":{},\"insts\":{},\"ns_total\":{},\"ns_p50\":{},\"ns_p95\":{}}}",
            json::escape(name),
            p.count,
            p.insts,
            total,
            percentile(&p.ns, 50),
            percentile(&p.ns, 95),
        );
    }
    let _ = write!(
        out,
        "}},\"shards\":{{\"runs\":{},\"calls\":{},\"max_workers\":{},\
         \"wall_ns_p50\":{},\"wall_ns_p95\":{},\"merge_wait_ns\":{}}}",
        shards.runs,
        shards.calls,
        shards.max_workers,
        percentile(&shards.wall_ns, 50),
        percentile(&shards.wall_ns, 95),
        shards.merge_wait_ns,
    );
    if !metrics.is_empty() {
        let (insts_per_refill, hit_ratio) = pipeline_derived(metrics);
        out.push_str(",\"pipeline\":{");
        for (name, value) in metrics {
            let _ = write!(out, "\"{}\":{value},", json::escape(name));
        }
        let _ = write!(
            out,
            "\"insts_per_refill\":{insts_per_refill},\"trace_cache_hit_ratio\":{}}}",
            hit_ratio.map_or("null".to_string(), |r| json::num(r).to_string()),
        );
    }
    out.push('}');
    out
}
