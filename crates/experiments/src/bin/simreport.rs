//! Aggregate run-ledger JSONL files (written via `--trace-out` /
//! `SIM_TRACE_OUT`) into per-technique and per-phase tables.
//!
//! ```text
//! simreport [--check] [--json] [--canon] <ledger.jsonl>...
//! ```
//!
//! - default: human-readable tables — per technique: runs, benchmarks,
//!   reuse provenance counts and reuse ratio, cost totals, wall time;
//!   per phase: span count, total/p50/p95 wall time, instructions; plus
//!   "pipeline", "histogram", and "profile" sections when the ledger
//!   carries the corresponding footers (hot-loop counters, log2 latency
//!   histograms, `SIM_PROFILE=1` stage attribution).
//! - `--check`: validate every line against the versioned schema
//!   (required keys, cost keys, provenance vocabulary; metrics/histogram/
//!   profile footers against their footer shapes) and exit non-zero on the
//!   first violation. Prints `ok: N records[, F metrics footers][, P
//!   profile footers]` on success.
//! - `--json`: the same aggregation as one machine-readable JSON object
//!   (used to assemble `BENCH_obs.json`).
//! - `--canon`: print the deterministic projection of every run record
//!   (sorted; wall time, reuse provenance, and phase/shard/footer
//!   observations dropped). Two ledgers describing the same sweep — e.g.
//!   one streamed by `simserve`, one written offline with `--trace-out` —
//!   canonicalize byte-identically; `diff` the outputs to prove it.
//!
//! All parsing/rendering lives in [`experiments::report`] so integration
//! tests validate ledgers in-process.

use std::process::ExitCode;

use experiments::report;

fn main() -> ExitCode {
    let mut check = false;
    let mut as_json = false;
    let mut as_canon = false;
    let mut files: Vec<String> = Vec::new();
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--check" => check = true,
            "--json" => as_json = true,
            "--canon" => as_canon = true,
            "--help" | "-h" => {
                eprintln!("usage: simreport [--check] [--json] [--canon] <ledger.jsonl>...");
                return ExitCode::SUCCESS;
            }
            f => files.push(f.to_string()),
        }
    }
    if files.is_empty() {
        eprintln!("usage: simreport [--check] [--json] [--canon] <ledger.jsonl>...");
        return ExitCode::from(2);
    }
    if as_canon {
        return match report::canon(&files) {
            Ok(text) => {
                print!("{text}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("simreport: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if check {
        return match report::check(&files) {
            Ok(line) => {
                println!("{line}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("simreport: {e}");
                ExitCode::FAILURE
            }
        };
    }
    match report::load(&files) {
        Ok(ledger) => {
            if as_json {
                println!("{}", report::to_json(&ledger));
            } else {
                print!("{}", report::human(&ledger));
            }
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("simreport: {e}");
            ExitCode::FAILURE
        }
    }
}
