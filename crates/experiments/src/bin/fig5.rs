//! Regenerates the paper's `fig5` item. See `experiments` crate docs.
fn main() {
    let opts = experiments::opts::Opts::from_env();
    eprintln!("[simtech] fig5: {}", opts.describe());
    print!("{}", experiments::run_experiment("fig5", &opts));
}
