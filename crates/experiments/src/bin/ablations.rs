//! Design-choice ablations (DESIGN.md section 6).
fn main() {
    let opts = experiments::opts::Opts::from_env();
    eprintln!("[simtech] ablations: {}", opts.describe());
    print!("{}", experiments::run_experiment("ablations", &opts));
}
