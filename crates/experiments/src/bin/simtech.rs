//! The experiment driver: `simtech <experiment|all> [flags]`.
//!
//! Runs one named experiment (or every one in paper order with `all`) and
//! prints the combined report. Flags are shared with the individual
//! binaries: `--full`, `--quick`, `--scale <f>`, `--bench <a,b,c>`,
//! `--enhancement <nlp|tc>`.
fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0] == "--help" || args[0] == "-h" {
        eprintln!(
            "usage: simtech <experiment|all> [--full] [--scale f] [--bench a,b,c] [--out dir]\n\
             \x20                            [--jobs n] [--metrics] [--trace-out file]\n\
             experiments: {}",
            experiments::EXPERIMENTS.join(", ")
        );
        return;
    }
    let which = args.remove(0);
    // Extract --out before Opts parsing (it is driver-specific).
    let mut out_dir: Option<std::path::PathBuf> = None;
    if let Some(i) = args.iter().position(|a| a == "--out") {
        args.remove(i);
        if i >= args.len() {
            eprintln!("error: --out requires a directory argument");
            std::process::exit(2);
        }
        out_dir = Some(args.remove(i).into());
    }
    if let Some(d) = &out_dir {
        std::fs::create_dir_all(d).expect("create --out directory");
    }
    let opts = experiments::opts::Opts::from_args(args);
    eprintln!("[simtech] {}", opts.describe());
    let emit = |name: &str, report: String| match &out_dir {
        Some(d) => {
            let path = d.join(format!("{name}.txt"));
            std::fs::write(&path, &report).expect("write report");
            eprintln!("[simtech] wrote {}", path.display());
        }
        None => print!("{report}"),
    };
    if which == "all" {
        for name in experiments::EXPERIMENTS {
            if out_dir.is_none() {
                println!("\n================ {name} ================\n");
            }
            emit(name, experiments::run_experiment(name, &opts));
        }
    } else {
        emit(&which, experiments::run_experiment(&which, &opts));
    }
}
