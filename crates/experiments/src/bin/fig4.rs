//! Regenerates the paper's `fig4` item. See `experiments` crate docs.
fn main() {
    let opts = experiments::opts::Opts::from_env();
    eprintln!("[simtech] fig4: {}", opts.describe());
    print!("{}", experiments::run_experiment("fig4", &opts));
}
