//! Runs the `extensions` analysis. See the `experiments` crate docs.
fn main() {
    let opts = experiments::opts::Opts::from_env();
    eprintln!("[simtech] extensions: {}", opts.describe());
    print!("{}", experiments::run_experiment("extensions", &opts));
}
