//! Regenerates the paper's `profile_char` item. See `experiments` crate docs.
fn main() {
    let opts = experiments::opts::Opts::from_env();
    eprintln!("[simtech] profile_char: {}", opts.describe());
    print!("{}", experiments::run_experiment("profile_char", &opts));
}
