//! Regenerates the paper's `table2` item. See `experiments` crate docs.
fn main() {
    let opts = experiments::opts::Opts::from_env();
    eprintln!("[simtech] table2: {}", opts.describe());
    print!("{}", experiments::run_experiment("table2", &opts));
}
