//! Regenerates the paper's `fig1` item. See `experiments` crate docs.
fn main() {
    let opts = experiments::opts::Opts::from_env();
    eprintln!("[simtech] fig1: {}", opts.describe());
    print!("{}", experiments::run_experiment("fig1", &opts));
}
