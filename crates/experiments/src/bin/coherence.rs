//! Runs the `coherence` analysis. See the `experiments` crate docs.
fn main() {
    let opts = experiments::opts::Opts::from_env();
    eprintln!("[simtech] coherence: {}", opts.describe());
    print!("{}", experiments::run_experiment("coherence", &opts));
}
