//! Regenerates the paper's `table1` item. See `experiments` crate docs.
fn main() {
    let opts = experiments::opts::Opts::from_env();
    eprintln!("[simtech] table1: {}", opts.describe());
    print!("{}", experiments::run_experiment("table1", &opts));
}
