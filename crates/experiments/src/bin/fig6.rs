//! Regenerates the paper's `fig6` item. See `experiments` crate docs.
fn main() {
    let opts = experiments::opts::Opts::from_env();
    eprintln!("[simtech] fig6: {}", opts.describe());
    print!("{}", experiments::run_experiment("fig6", &opts));
}
