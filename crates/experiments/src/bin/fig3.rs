//! Regenerates the paper's `fig3` item. See `experiments` crate docs.
fn main() {
    let opts = experiments::opts::Opts::from_env();
    eprintln!("[simtech] fig3: {}", opts.describe());
    print!("{}", experiments::run_experiment("fig3", &opts));
}
