//! Regenerates the paper's `fig7` item. See `experiments` crate docs.
fn main() {
    let opts = experiments::opts::Opts::from_env();
    eprintln!("[simtech] fig7: {}", opts.describe());
    print!("{}", experiments::run_experiment("fig7", &opts));
}
