//! Continuous perf-regression harness: measures the repo's standing probes
//! (the `pipeline_hotloop` / `stats_hotloop` / `shard_bench` kernels, plus
//! the `simserve` submit-latency probes) best-of-N with MAD noise bounds
//! and compares them against the committed `BENCH_baselines.json` in the
//! unified simbench schema.
//!
//! ```text
//! simbench                         # measure and print (report-only)
//! simbench --check                 # compare vs baselines; exit 1 on a
//!                                  # regression beyond the noise band
//!                                  # (report-only on a 1-CPU host unless
//!                                  # --enforce, per the shard_bench CI
//!                                  # precedent)
//! simbench --update-baselines      # re-record baselines after an
//!                                  # intentional perf change
//! simbench --convert BENCH_pipeline.json BENCH_parallel.json ...
//!                                  # fold legacy layouts into the unified
//!                                  # schema (no measuring)
//! ```
//!
//! `--baselines FILE` overrides the default `BENCH_baselines.json`;
//! `SIM_BENCH_RUNS` (default 5) sets N. Baselines are host-specific wall
//! measurements: compare only against baselines recorded on the same class
//! of machine (the `--check` gate also refuses when the baseline's CPU
//! count differs, since parallel probes shift shape).

use std::process::ExitCode;
use std::time::Instant;

use experiments::bench::{best_and_mad, compare, convert_legacy, Bench, Direction, Probe, Verdict};
use sim_core::config::SimConfig;
use sim_core::engine::Simulator;
use sim_core::isa::InstStream;
use simstats::kernel::{argmin, padded_lanes, sq_dists_dim_major, transpose_centroids};
use simstats::pb::PbDesign;
use simstats::rng::SplitMix64;
use techniques::{cache, smarts};
use workloads::{benchmark, InputSet, Interp, Program};

const DEFAULT_BASELINES: &str = "BENCH_baselines.json";
const DEFAULT_RUNS: u64 = 5;

fn main() -> ExitCode {
    let mut check = false;
    let mut update = false;
    let mut enforce = false;
    let mut convert: Vec<String> = Vec::new();
    let mut converting = false;
    let mut baselines = DEFAULT_BASELINES.to_string();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--check" => check = true,
            "--update-baselines" => update = true,
            "--enforce" => enforce = true,
            "--convert" => converting = true,
            "--baselines" => {
                baselines = args.next().expect("--baselines needs a file path");
                converting = false;
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: simbench [--check [--enforce]] [--update-baselines] \
                     [--convert <legacy.json>...] [--baselines FILE]"
                );
                return ExitCode::SUCCESS;
            }
            f if converting => convert.push(f.to_string()),
            other => {
                eprintln!("simbench: unknown flag {other:?} (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    if !convert.is_empty() {
        return do_convert(&convert, &baselines);
    }

    let runs = sim_obs::env_val("SIM_BENCH_RUNS")
        .and_then(|v: String| v.parse::<u64>().ok())
        .unwrap_or(DEFAULT_RUNS)
        .max(1);
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get()) as u64;
    println!("simbench: best of {runs} runs per probe, {cpus} cpu(s)");
    let current = measure_all(runs, cpus);
    for (name, p) in &current.probes {
        println!(
            "  {name:<34} {:>10.3} {} (mad {:.3}, n={})",
            p.value, p.unit, p.mad, p.runs
        );
    }

    if update {
        if let Err(e) = write_baselines(&baselines, current) {
            eprintln!("simbench: {e}");
            return ExitCode::FAILURE;
        }
        println!("simbench: baselines written to {baselines}");
        return ExitCode::SUCCESS;
    }

    if check {
        return do_check(&baselines, &current, cpus, enforce);
    }
    ExitCode::SUCCESS
}

/// Merge legacy files into the baselines file without measuring.
fn do_convert(files: &[String], baselines: &str) -> ExitCode {
    let mut bench = read_baselines(baselines).unwrap_or_default();
    for file in files {
        let text = match std::fs::read_to_string(file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("simbench: cannot read {file}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match convert_legacy(file, &text) {
            Ok(probes) => {
                println!("simbench: {file}: {} probes converted", probes.len());
                bench.probes.extend(probes);
            }
            Err(e) => {
                eprintln!("simbench: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let Err(e) = write_baselines(baselines, bench) {
        eprintln!("simbench: {e}");
        return ExitCode::FAILURE;
    }
    println!("simbench: merged into {baselines}");
    ExitCode::SUCCESS
}

/// `--check`: compare against the committed baselines. Regressions exit
/// non-zero when enforcing (multi-core host, or `--enforce` anywhere);
/// a 1-CPU host prints the skip-notice and stays green, matching the
/// `shard_bench --assert-scaling` precedent for shared runners.
fn do_check(baselines: &str, current: &Bench, cpus: u64, enforce: bool) -> ExitCode {
    let base = match read_baselines(baselines) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("simbench: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut regressions = 0u64;
    println!(
        "simbench: checking against {baselines} (recorded on {} cpu(s), {})",
        base.host_cpus,
        if base.date.is_empty() {
            "undated"
        } else {
            &base.date
        }
    );
    for row in compare(&base, current) {
        let tag = match row.verdict {
            Verdict::Ok => "ok",
            Verdict::Improved => "improved",
            Verdict::Regressed => {
                regressions += 1;
                "REGRESSED"
            }
            Verdict::New => "new",
            Verdict::Missing => "missing",
        };
        println!("  {tag:<9} {:<34} {}", row.name, row.detail);
    }
    let comparable = base.host_cpus == 0 || base.host_cpus == cpus;
    if !comparable {
        println!(
            "simbench: notice: baseline recorded on {} cpu(s), host has {cpus}; \
             wall-clock comparison skipped (re-record with --update-baselines)",
            base.host_cpus
        );
        return ExitCode::SUCCESS;
    }
    if regressions == 0 {
        println!("simbench: ok, no regressions beyond the noise band");
        return ExitCode::SUCCESS;
    }
    if cpus >= 2 || enforce {
        eprintln!("simbench: {regressions} probe(s) regressed beyond the noise band");
        ExitCode::FAILURE
    } else {
        println!(
            "simbench: notice: single-CPU host, {regressions} regression(s) reported \
             but not enforced (pass --enforce to gate here)"
        );
        ExitCode::SUCCESS
    }
}

fn read_baselines(path: &str) -> Result<Bench, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    Bench::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn write_baselines(path: &str, mut bench: Bench) -> Result<(), String> {
    // Keep probes an update run did not re-measure (legacy.* conversions,
    // multi-core-only probes recorded elsewhere).
    if let Ok(old) = read_baselines(path) {
        for (name, probe) in old.probes {
            bench.probes.entry(name).or_insert(probe);
        }
    }
    std::fs::write(path, bench.to_json() + "\n").map_err(|e| format!("cannot write {path}: {e}"))
}

/// Measure every standing probe, best-of-`runs` with MAD noise bounds.
fn measure_all(runs: u64, cpus: u64) -> Bench {
    let mut bench = Bench {
        host_cpus: cpus,
        host_os: host_os(),
        date: today(),
        probes: std::collections::BTreeMap::new(),
    };
    let mut add = |name: &str, unit: &str, direction: Direction, samples: Vec<f64>| {
        let (value, mad) = best_and_mad(&samples, direction);
        bench.probes.insert(
            name.to_string(),
            Probe {
                value,
                mad,
                runs: samples.len() as u64,
                unit: unit.to_string(),
                direction,
                floor: None,
                note: None,
            },
        );
    };

    // --- pipeline probes (the pipeline_hotloop kernels) ---
    let gzip = program("gzip", 0.02);
    let mcf = program("mcf", 0.02);
    add(
        "pipeline.interp.gzip.ns_per_inst",
        "ns/inst",
        Direction::Lower,
        sample(runs, || {
            let t0 = Instant::now();
            let mut s = Interp::new(&gzip);
            let mut n = 0u64;
            while s.next_inst().is_some() {
                n += 1;
            }
            t0.elapsed().as_nanos() as f64 / n as f64
        }),
    );
    for (name, prog) in [("gzip", &gzip), ("mcf", &mcf)] {
        add(
            &format!("pipeline.{name}.ns_per_inst"),
            "ns/inst",
            Direction::Lower,
            sample(runs, || {
                let mut sim = Simulator::new(SimConfig::table3(2));
                let mut s = Interp::new(prog);
                let t0 = Instant::now();
                sim.run_detailed(&mut s, u64::MAX);
                t0.elapsed().as_nanos() as f64 / sim.stats().core.committed as f64
            }),
        );
    }

    // --- stats probes (the stats_hotloop kernels) ---
    add(
        "stats.kmeans.assign.ns_per_point",
        "ns/point",
        Direction::Lower,
        sample(runs, kmeans_assign_pass),
    );
    add(
        "stats.pb.effects.ns_per_call",
        "ns/call",
        Direction::Lower,
        sample(runs, pb_effects_pass),
    );

    // --- warming-kernel probes (the PR 10 vectorized warm path) ---
    add(
        "warm.ns_per_inst",
        "ns/inst",
        Direction::Lower,
        sample(runs, || {
            let mut sim = Simulator::new(SimConfig::table3(2));
            let mut s = Interp::new(&gzip);
            let t0 = Instant::now();
            let n = sim.warm_functional(&mut s, u64::MAX);
            t0.elapsed().as_nanos() as f64 / n as f64
        }),
    );
    add(
        "model.tag_probe_ns",
        "ns/probe",
        Direction::Lower,
        sample(runs, tag_probe_pass),
    );

    // --- shard probes (the shard_bench kernel, scaled down) ---
    let smarts_prog = program("gzip", 0.5);
    let cfg = SimConfig::table3(2);
    let serial = sample(runs, || {
        sim_exec::set_shards(1);
        cache::clear_all();
        let t0 = Instant::now();
        let out = smarts::run_smarts(&smarts_prog, &cfg, 1_000, 2_000);
        let dt = t0.elapsed().as_nanos() as f64;
        std::hint::black_box(out.metrics.cpi);
        dt / smarts_prog.dynamic_len_estimate as f64
    });
    add(
        "shard.smarts.serial.ns_per_inst",
        "ns/inst",
        Direction::Lower,
        serial.clone(),
    );
    if cpus >= 2 {
        // Wall-clock speedup of the sharded run over the serial one, only
        // meaningful where shards can actually run in parallel.
        let shards = cpus.min(4) as usize;
        sim_exec::set_jobs(shards);
        let sharded = sample(runs, || {
            sim_exec::set_shards(shards);
            cache::clear_all();
            let t0 = Instant::now();
            let out = smarts::run_smarts(&smarts_prog, &cfg, 1_000, 2_000);
            let dt = t0.elapsed().as_nanos() as f64;
            std::hint::black_box(out.metrics.cpi);
            dt / smarts_prog.dynamic_len_estimate as f64
        });
        let (serial_best, _) = best_and_mad(&serial, Direction::Lower);
        let (sharded_best, _) = best_and_mad(&sharded, Direction::Lower);
        add(
            &format!("shard.smarts.x{shards}.speedup"),
            "x",
            Direction::Higher,
            vec![serial_best / sharded_best],
        );
        sim_exec::set_jobs(0);
    }
    sim_exec::set_shards(0);
    cache::clear_all();

    // --- service probes (an in-process simserve on a loopback port) ---
    // Last on purpose: Server::bind turns span tracing on process-wide,
    // and the earlier probes must measure with the same settings the
    // committed baselines were recorded under.
    let (first_us, complete_us) = serve_pass(runs);
    add(
        "serve.submit.first_record_us",
        "us",
        Direction::Lower,
        first_us,
    );
    add(
        "serve.submit.complete_us",
        "us",
        Direction::Lower,
        complete_us,
    );

    // The bare-interpreter loop runs ~6 ns/inst: at that size, code-layout
    // shifts from an unrelated relink move the number by tens of percent
    // while the within-binary MAD stays tiny. Give it a structural noise
    // floor so only order-of-magnitude changes (e.g. an accidental
    // de-inlining) gate the check.
    if let Some(p) = bench.probes.get_mut("pipeline.interp.gzip.ns_per_inst") {
        p.floor = Some(0.5);
    }
    bench
}

/// One warm-up call, then `runs` timed samples of `f`.
fn sample<F: FnMut() -> f64>(runs: u64, mut f: F) -> Vec<f64> {
    f();
    (0..runs).map(|_| f()).collect()
}

fn program(name: &str, scale: f64) -> Program {
    benchmark(name)
        .expect("benchmark in suite")
        .program_scaled(InputSet::Reference, scale)
        .expect("reference exists")
}

/// One k-means assignment pass over the SimPoint-shaped data
/// (n=2000, dim=15, k=30), returning ns/point.
fn kmeans_assign_pass() -> f64 {
    let (n, dim, k) = (2000usize, 15usize, 30usize);
    let mut rng = SplitMix64::new(0xbeef ^ ((n as u64) << 8) ^ dim as u64);
    let data: Vec<Vec<f64>> = (0..n)
        .map(|_| (0..dim).map(|_| rng.unit_f64() * 100.0).collect())
        .collect();
    let centroids: Vec<Vec<f64>> = (0..k)
        .map(|_| (0..dim).map(|_| rng.unit_f64() * 100.0).collect())
        .collect();
    let lanes = padded_lanes(k);
    let cent_t = transpose_centroids(&centroids);
    let mut dists = vec![0.0; lanes];
    let mut acc = 0u64;
    const PASSES: usize = 20;
    let t0 = Instant::now();
    for _ in 0..PASSES {
        for p in &data {
            sq_dists_dim_major(p, &cent_t, lanes, &mut dists);
            acc = acc.wrapping_add(argmin(&dists[..k]) as u64);
        }
    }
    let dt = t0.elapsed().as_nanos() as f64;
    std::hint::black_box(acc);
    dt / (n * PASSES) as f64
}

/// One tag-probe pass over a warm 8-way 1 MiB cache: ns per
/// [`sim_core::cache::Cache::probe_way`] call on a mixed hit/miss address
/// stream (the kernel the SIMD tag repack accelerates).
fn tag_probe_pass() -> f64 {
    use sim_core::cache::Cache;
    use sim_core::config::CacheConfig;
    let mut c = Cache::new(CacheConfig {
        size_bytes: 1 << 20,
        assoc: 8,
        line_bytes: 64,
        latency: 10,
    });
    let mut rng = SplitMix64::new(0x7a95);
    // Working set ~2x capacity: roughly half the probes hit.
    let addrs: Vec<u64> = (0..8_192).map(|_| rng.below((2 << 20) / 64) * 64).collect();
    for &a in &addrs {
        let way = c.probe_way(a);
        let _ = c.access_at(a, false, way);
    }
    let mut acc = 0u64;
    const PASSES: usize = 50;
    let t0 = Instant::now();
    for _ in 0..PASSES {
        for &a in &addrs {
            acc = acc.wrapping_add(c.probe_way(a).map_or(0, |w| w as u64 + 1));
        }
    }
    let dt = t0.elapsed().as_nanos() as f64;
    std::hint::black_box(acc);
    dt / (addrs.len() * PASSES) as f64
}

/// PB effects over the paper's 43-factor folded design, ns per `effects()`
/// call.
fn pb_effects_pass() -> f64 {
    let design = PbDesign::new(43).with_foldover();
    let mut rng = SplitMix64::new(7);
    let responses: Vec<f64> = (0..design.num_runs())
        .map(|_| rng.unit_f64() * 3.0)
        .collect();
    let mut acc = 0u64;
    const CALLS: usize = 5_000;
    let t0 = Instant::now();
    for _ in 0..CALLS {
        let eff = design.effects(&responses);
        acc = acc.wrapping_add(eff[0].to_bits());
    }
    let dt = t0.elapsed().as_nanos() as f64;
    std::hint::black_box(acc);
    dt / CALLS as f64
}

/// Submit-to-first-record and submit-to-complete latency for a trivial
/// one-run job against an in-process `simserve` on a loopback port, in
/// microseconds. The warm-up submit populates the run cache, so the timed
/// samples measure the service path itself — admission, scheduling, the
/// job-scoped ledger, streaming — rather than the simulation.
fn serve_pass(runs: u64) -> (Vec<f64>, Vec<f64>) {
    use sim_serve::{proto::JobDesc, Client, Server, ServerConfig};
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        active: 1,
        ..ServerConfig::default()
    })
    .expect("serve probe binds a loopback port");
    let addr = server.local_addr().expect("bound address").to_string();
    let shutdown = server.shutdown_handle();
    let daemon = std::thread::spawn(move || server.run());
    let job = JobDesc {
        benches: vec!["gzip".to_string()],
        scale: 0.02,
        specs: vec!["runz:z=2k".to_string()],
        configs: vec!["default".to_string()],
        priority: 0,
    };
    // One connection for every sample: a fresh connect pays the accept
    // loop's poll interval (~25 ms), which would drown the per-request
    // path this probe is after.
    let mut client = Client::connect(&addr).expect("probe client connects");
    let mut submit = || {
        let t0 = Instant::now();
        let mut first = None;
        let out = client
            .submit_streaming(&job, |_| {
                first.get_or_insert_with(|| t0.elapsed());
            })
            .expect("probe job completes");
        let total = t0.elapsed();
        assert_eq!(out.state, "done", "probe job must complete");
        (
            first.unwrap_or(total).as_nanos() as f64 / 1e3,
            total.as_nanos() as f64 / 1e3,
        )
    };
    submit(); // warm-up: populates the run cache
    let (mut firsts, mut totals) = (Vec::new(), Vec::new());
    for _ in 0..runs {
        let (f, t) = submit();
        firsts.push(f);
        totals.push(t);
    }
    shutdown.store(true, std::sync::atomic::Ordering::SeqCst);
    daemon
        .join()
        .expect("serve probe daemon joins")
        .expect("serve probe daemon drains");
    (firsts, totals)
}

fn host_os() -> String {
    let release = std::fs::read_to_string("/proc/sys/kernel/osrelease")
        .map(|s| s.trim().to_string())
        .unwrap_or_default();
    if release.is_empty() {
        std::env::consts::OS.to_string()
    } else {
        format!("{} {release}", std::env::consts::OS)
    }
}

/// Today as `YYYY-MM-DD` (UTC) from the system clock — no chrono in the
/// dependency-free workspace, so do the civil-date conversion by hand
/// (Howard Hinnant's days-from-civil inverse).
fn today() -> String {
    let secs = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let days = (secs / 86_400) as i64;
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}
