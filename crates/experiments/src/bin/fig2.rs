//! Regenerates the paper's `fig2` item. See `experiments` crate docs.
fn main() {
    let opts = experiments::opts::Opts::from_env();
    eprintln!("[simtech] fig2: {}", opts.describe());
    print!("{}", experiments::run_experiment("fig2", &opts));
}
