//! Regenerates the paper's `table3` item. See `experiments` crate docs.
fn main() {
    let opts = experiments::opts::Opts::from_env();
    eprintln!("[simtech] table3: {}", opts.describe());
    print!("{}", experiments::run_experiment("table3", &opts));
}
