//! Regenerates the paper's `arch_char` item. See `experiments` crate docs.
fn main() {
    let opts = experiments::opts::Opts::from_env();
    eprintln!("[simtech] arch_char: {}", opts.describe());
    print!("{}", experiments::run_experiment("arch_char", &opts));
}
