//! Continuous-benchmarking support: the unified `simbench` baseline schema,
//! the MAD-based noise model, regression comparison, and the converter that
//! folds the historical ad-hoc `BENCH_{parallel,shards,pipeline}.json`
//! layouts into the unified schema.
//!
//! The schema is one JSON object per baseline file:
//!
//! ```json
//! {"v":1,"schema":"simbench","date":"...","host":{"os":"...","cpus":1},
//!  "probes":{"pipeline.gzip.ns_per_inst":
//!    {"value":107.3,"mad":1.9,"runs":5,"unit":"ns/inst",
//!     "direction":"lower","note":"..."}}}
//! ```
//!
//! `value` is the best-of-N measurement (minimum for `lower` probes,
//! maximum for `higher`), `mad` the median absolute deviation of the N
//! samples — a robust noise scale that one scheduler hiccup cannot
//! inflate. A probe *regresses* when it moves past the baseline in the bad
//! direction by more than [`noise_band`]:
//! `max(4·(mad_base+mad_cur)/runs, 8% of baseline)`. The compared values
//! are best-of-N extremes, not medians: timing noise is one-sided
//! (additive delays on top of a noise-free floor), so the dispersion of
//! the minimum shrinks roughly with N relative to the raw sample MAD — an
//! unscaled four-MAD band on a noisy shared host is wide enough to
//! swallow a genuine 20% regression. The relative floor keeps
//! near-zero-MAD probes from tripping on sub-percent drift; a probe may
//! widen it with an explicit `"floor"` field (see [`Probe::floor`]).

use std::collections::BTreeMap;

use sim_obs::json::{self, Json};

/// Baseline schema version (`"v"` in the file).
pub const SCHEMA_VERSION: u64 = 1;

/// The `"schema"` discriminator in the file.
pub const SCHEMA_NAME: &str = "simbench";

/// Which way a probe's metric improves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Smaller is better (latencies, ns/inst).
    Lower,
    /// Larger is better (speedups, throughput).
    Higher,
}

impl Direction {
    /// The schema string (`"lower"` / `"higher"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Direction::Lower => "lower",
            Direction::Higher => "higher",
        }
    }

    /// Parse the schema string.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "lower" => Ok(Direction::Lower),
            "higher" => Ok(Direction::Higher),
            other => Err(format!("direction must be lower or higher, got {other:?}")),
        }
    }
}

/// One measured probe.
#[derive(Debug, Clone, PartialEq)]
pub struct Probe {
    /// Best-of-N measurement.
    pub value: f64,
    /// Median absolute deviation of the N samples.
    pub mad: f64,
    /// Sample count the value came from.
    pub runs: u64,
    /// Unit label (informational).
    pub unit: String,
    /// Which way this metric improves.
    pub direction: Direction,
    /// Per-probe relative noise floor overriding the default 8%, for
    /// probes whose honest uncertainty is structural rather than
    /// statistical — e.g. a ~6 ns/inst interpreter loop swings tens of
    /// percent on code-layout changes alone, with a tiny MAD within any
    /// one binary.
    pub floor: Option<f64>,
    /// Free-form provenance note (informational).
    pub note: Option<String>,
}

/// A full baseline / measurement set.
#[derive(Debug, Clone, Default)]
pub struct Bench {
    /// `host.cpus` — available parallelism when measured.
    pub host_cpus: u64,
    /// `host.os` (informational).
    pub host_os: String,
    /// Measurement date (informational, `YYYY-MM-DD`).
    pub date: String,
    /// Probe name -> measurement.
    pub probes: BTreeMap<String, Probe>,
}

impl Bench {
    /// Serialize to the unified schema (pretty-ish, one probe per line).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{{");
        let _ = writeln!(out, "  \"v\": {SCHEMA_VERSION},");
        let _ = writeln!(out, "  \"schema\": \"{SCHEMA_NAME}\",");
        let _ = writeln!(out, "  \"date\": \"{}\",", json::escape(&self.date));
        let _ = writeln!(
            out,
            "  \"host\": {{\"os\": \"{}\", \"cpus\": {}}},",
            json::escape(&self.host_os),
            self.host_cpus
        );
        let _ = writeln!(out, "  \"probes\": {{");
        for (i, (name, p)) in self.probes.iter().enumerate() {
            let comma = if i + 1 < self.probes.len() { "," } else { "" };
            let floor = p
                .floor
                .map_or(String::new(), |f| format!(", \"floor\": {}", json::num(f)));
            let note = p.note.as_ref().map_or(String::new(), |n| {
                format!(", \"note\": \"{}\"", json::escape(n))
            });
            let _ = writeln!(
                out,
                "    \"{}\": {{\"value\": {}, \"mad\": {}, \"runs\": {}, \
                 \"unit\": \"{}\", \"direction\": \"{}\"{floor}{note}}}{comma}",
                json::escape(name),
                json::num(p.value),
                json::num(p.mad),
                p.runs,
                json::escape(&p.unit),
                p.direction.as_str(),
            );
        }
        let _ = writeln!(out, "  }}");
        out.push('}');
        out
    }

    /// Parse the unified schema, validating shape and version.
    pub fn parse(text: &str) -> Result<Self, String> {
        let j = Json::parse(text)?;
        let v = j
            .get("v")
            .and_then(Json::as_u64)
            .ok_or("baseline is missing the integer schema version \"v\"")?;
        if v != SCHEMA_VERSION {
            return Err(format!("schema version {v} (expected {SCHEMA_VERSION})"));
        }
        match j.get("schema").and_then(Json::as_str) {
            Some(SCHEMA_NAME) => {}
            other => {
                return Err(format!(
                    "schema discriminator {other:?} (expected {SCHEMA_NAME:?}); \
                     convert legacy BENCH files with simbench --convert"
                ))
            }
        }
        let mut bench = Bench {
            host_cpus: j
                .get("host")
                .and_then(|h| h.get("cpus"))
                .and_then(Json::as_u64)
                .unwrap_or(0),
            host_os: j
                .get("host")
                .and_then(|h| h.get("os"))
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
            date: j
                .get("date")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
            probes: BTreeMap::new(),
        };
        let Some(Json::Obj(probes)) = j.get("probes") else {
            return Err("baseline is missing the probes object".to_string());
        };
        for (name, p) in probes {
            let f = |key: &str| -> Result<f64, String> {
                p.get(key)
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("probe {name:?}: {key} is not a number"))
            };
            bench.probes.insert(
                name.clone(),
                Probe {
                    value: f("value")?,
                    mad: f("mad")?,
                    runs: p.get("runs").and_then(Json::as_u64).unwrap_or(1),
                    unit: p
                        .get("unit")
                        .and_then(Json::as_str)
                        .unwrap_or("")
                        .to_string(),
                    direction: Direction::parse(
                        p.get("direction")
                            .and_then(Json::as_str)
                            .ok_or_else(|| format!("probe {name:?}: missing direction"))?,
                    )?,
                    floor: p.get("floor").and_then(Json::as_f64),
                    note: p.get("note").and_then(Json::as_str).map(str::to_string),
                },
            );
        }
        Ok(bench)
    }
}

/// Best-of-N summary of raw samples: (`best` in `direction`, MAD).
///
/// MAD — the median of `|x - median|` — is the noise scale: robust to a
/// single scheduler hiccup where stddev is not.
pub fn best_and_mad(samples: &[f64], direction: Direction) -> (f64, f64) {
    assert!(!samples.is_empty(), "need at least one sample");
    let best = samples.iter().copied().fold(
        match direction {
            Direction::Lower => f64::INFINITY,
            Direction::Higher => f64::NEG_INFINITY,
        },
        |a, b| match direction {
            Direction::Lower => a.min(b),
            Direction::Higher => a.max(b),
        },
    );
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = sorted[sorted.len() / 2];
    let mut dev: Vec<f64> = sorted.iter().map(|x| (x - median).abs()).collect();
    dev.sort_by(|a, b| a.partial_cmp(b).unwrap());
    (best, dev[dev.len() / 2])
}

/// The tolerated movement past the baseline before a probe counts as
/// regressed: `max(4·(mad_base + mad_cur)/runs, floor · |baseline|)`,
/// where `runs` is the smaller sample count of the two sides and `floor`
/// is the baseline probe's [`Probe::floor`] (default 8%). The values
/// under comparison are best-of-N extremes, not medians: timing noise is
/// one-sided — delays add to a noise-free floor, so the minimum of N
/// samples scatters roughly N× less than the samples themselves — and
/// the raw MAD sum must be deflated accordingly or a noisy host's band
/// swallows real regressions.
pub fn noise_band(base: &Probe, cur: &Probe) -> f64 {
    let runs = base.runs.min(cur.runs).max(1) as f64;
    let floor = base.floor.unwrap_or(0.08);
    (4.0 * (base.mad + cur.mad) / runs).max(floor * base.value.abs())
}

/// Verdict for one probe in a baseline comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Within the noise band of the baseline.
    Ok,
    /// Moved past the noise band in the *good* direction.
    Improved,
    /// Moved past the noise band in the *bad* direction.
    Regressed,
    /// Probe measured now but absent from the baseline.
    New,
    /// Probe in the baseline but not measured now.
    Missing,
}

/// One row of a baseline comparison.
#[derive(Debug, Clone)]
pub struct CompareRow {
    /// Probe name.
    pub name: String,
    /// Outcome.
    pub verdict: Verdict,
    /// Human-readable detail (values, band).
    pub detail: String,
}

/// Compare `current` measurements against `baseline`, probe by probe.
/// Rows come back in name order; [`Verdict::Regressed`] rows are what
/// `simbench --check` gates on.
pub fn compare(baseline: &Bench, current: &Bench) -> Vec<CompareRow> {
    let mut rows = Vec::new();
    let names: std::collections::BTreeSet<&String> = baseline
        .probes
        .keys()
        .chain(current.probes.keys())
        .collect();
    for name in names {
        let row = match (baseline.probes.get(name), current.probes.get(name)) {
            (Some(base), Some(cur)) => {
                let band = noise_band(base, cur);
                // Positive delta = moved in the bad direction.
                let bad_delta = match base.direction {
                    Direction::Lower => cur.value - base.value,
                    Direction::Higher => base.value - cur.value,
                };
                let verdict = if bad_delta > band {
                    Verdict::Regressed
                } else if -bad_delta > band {
                    Verdict::Improved
                } else {
                    Verdict::Ok
                };
                CompareRow {
                    name: name.clone(),
                    verdict,
                    detail: format!(
                        "{} -> {} {} (band ±{}, {})",
                        trim(base.value),
                        trim(cur.value),
                        cur.unit,
                        trim(band),
                        base.direction.as_str(),
                    ),
                }
            }
            (None, Some(cur)) => CompareRow {
                name: name.clone(),
                verdict: Verdict::New,
                detail: format!(
                    "{} {} (not in baseline; record with --update-baselines)",
                    trim(cur.value),
                    cur.unit
                ),
            },
            (Some(base), None) => CompareRow {
                name: name.clone(),
                verdict: Verdict::Missing,
                detail: format!(
                    "baseline {} {} not measured this run",
                    trim(base.value),
                    base.unit
                ),
            },
            (None, None) => unreachable!("name came from one of the maps"),
        };
        rows.push(row);
    }
    rows
}

/// Three significant-ish decimals without trailing zeros.
fn trim(v: f64) -> String {
    let s = format!("{v:.3}");
    s.trim_end_matches('0').trim_end_matches('.').to_string()
}

/// Fold one legacy `BENCH_*.json` layout into unified-schema probes.
/// Recognizes the three historical shapes by their distinguishing keys:
///
/// - `BENCH_pipeline.json` — `run_detailed` rows (and the nested `pr7`
///   update) with `after_ns_per_inst` per workload;
/// - `BENCH_parallel.json` — `benchmark.runs[]` with `jobs` +
///   `wall_clock_s`;
/// - `BENCH_shards.json` — `benchmark.runs[]` with `shards` +
///   `wall_clock_s`.
///
/// Converted probes carry `runs: 1` and `mad: 0` (the legacy files kept no
/// per-sample spread) plus a provenance note, so the old trajectory stays
/// comparable without overstating its precision.
pub fn convert_legacy(file_label: &str, text: &str) -> Result<Vec<(String, Probe)>, String> {
    let j = Json::parse(text)?;
    if j.get("schema").and_then(Json::as_str) == Some(SCHEMA_NAME) {
        return Err(format!("{file_label}: already in the unified schema"));
    }
    let note = |section: &str| Some(format!("converted from {file_label} {section}"));
    let mut out = Vec::new();
    let date = j.get("date").and_then(Json::as_str).unwrap_or("?");

    // BENCH_pipeline.json: top-level and pr7 run_detailed tables.
    for (prefix, section) in [("", "run_detailed"), ("pr7.", "pr7")] {
        let tbl = if prefix.is_empty() {
            j.get("run_detailed")
        } else {
            j.get("pr7").and_then(|p| p.get("run_detailed"))
        };
        let Some(Json::Arr(rows)) = tbl else { continue };
        for row in rows {
            let Some(workload) = row.get("workload").and_then(Json::as_str) else {
                continue;
            };
            let Some(after) = row.get("after_ns_per_inst").and_then(Json::as_f64) else {
                continue;
            };
            // "gzip @ scale 0.02 (...)" -> "gzip"; keep odd labels whole.
            let short = workload
                .split([' ', ','])
                .next()
                .unwrap_or(workload)
                .to_lowercase();
            // Two rows can share a leading word ("gzip" and "gzip,
            // SIM_TRACE_CACHE=0"); suffix duplicates instead of silently
            // keeping only the last.
            let mut key = format!("legacy.{prefix}run_detailed.{short}.ns_per_inst");
            let mut dup = 1;
            while out.iter().any(|(n, _)| *n == key) {
                dup += 1;
                key = format!("legacy.{prefix}run_detailed.{short}.{dup}.ns_per_inst");
            }
            out.push((
                key,
                Probe {
                    value: after,
                    mad: 0.0,
                    runs: 1,
                    unit: "ns/inst".to_string(),
                    direction: Direction::Lower,
                    floor: None,
                    note: note(&format!("{section} ({date})")),
                },
            ));
        }
    }

    // BENCH_parallel.json / BENCH_shards.json: benchmark.runs rows.
    if let Some(Json::Arr(rows)) = j.get("benchmark").and_then(|b| b.get("runs")) {
        for row in rows {
            let Some(wall) = row.get("wall_clock_s").and_then(Json::as_f64) else {
                continue;
            };
            let key = if let Some(jobs) = row.get("jobs").and_then(Json::as_u64) {
                format!("legacy.parallel.jobs{jobs}.wall_s")
            } else if let Some(shards) = row.get("shards").and_then(Json::as_u64) {
                format!("legacy.shards.{shards}.wall_s")
            } else {
                continue;
            };
            out.push((
                key,
                Probe {
                    value: wall,
                    mad: 0.0,
                    runs: 1,
                    unit: "s".to_string(),
                    direction: Direction::Lower,
                    floor: None,
                    note: note(&format!("benchmark.runs ({date})")),
                },
            ));
        }
    }

    if out.is_empty() {
        return Err(format!(
            "{file_label}: no recognized legacy sections \
             (expected run_detailed rows or benchmark.runs)"
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe(value: f64, mad: f64, direction: Direction) -> Probe {
        Probe {
            value,
            mad,
            runs: 5,
            unit: "ns".to_string(),
            direction,
            floor: None,
            note: None,
        }
    }

    #[test]
    fn schema_round_trips() {
        let mut b = Bench {
            host_cpus: 4,
            host_os: "Linux".to_string(),
            date: "2026-08-09".to_string(),
            probes: BTreeMap::new(),
        };
        b.probes.insert(
            "pipeline.gzip.ns_per_inst".to_string(),
            probe(107.3, 1.9, Direction::Lower),
        );
        let mut with_note = probe(3.2, 0.1, Direction::Higher);
        with_note.note = Some("speed\"up".to_string());
        b.probes.insert("shard.speedup".to_string(), with_note);
        let mut with_floor = probe(6.0, 0.05, Direction::Lower);
        with_floor.floor = Some(0.5);
        b.probes.insert("nano.loop".to_string(), with_floor);
        let parsed = Bench::parse(&b.to_json()).expect("round trip parses");
        assert_eq!(parsed.host_cpus, 4);
        assert_eq!(parsed.probes, b.probes);
    }

    #[test]
    fn per_probe_floor_widens_the_band() {
        // A 33% move on a nanobenchmark: regressed under the default 8%
        // floor, tolerated once the baseline declares a 50% structural
        // floor (code-layout sensitivity).
        let mut base = probe(6.0, 0.0, Direction::Lower);
        let cur = probe(8.0, 0.0, Direction::Lower);
        assert!(noise_band(&base, &cur) < 2.0);
        base.floor = Some(0.5);
        assert_eq!(noise_band(&base, &cur), 3.0);
    }

    #[test]
    fn version_and_schema_are_enforced() {
        assert!(
            Bench::parse("{\"v\":2,\"schema\":\"simbench\",\"probes\":{}}")
                .unwrap_err()
                .contains("schema version")
        );
        let err = Bench::parse("{\"v\":1,\"probes\":{}}").unwrap_err();
        assert!(err.contains("--convert"), "{err}");
    }

    #[test]
    fn best_and_mad_are_robust_to_one_outlier() {
        let (best, mad) = best_and_mad(&[10.0, 11.0, 10.5, 50.0, 10.2], Direction::Lower);
        assert_eq!(best, 10.0);
        assert!(mad < 1.0, "one hiccup must not inflate the MAD: {mad}");
        let (best, _) = best_and_mad(&[1.0, 3.0, 2.0], Direction::Higher);
        assert_eq!(best, 3.0);
    }

    #[test]
    fn compare_flags_regressions_beyond_the_band_only() {
        let mut base = Bench::default();
        let mut cur = Bench::default();
        base.probes
            .insert("a".into(), probe(100.0, 1.0, Direction::Lower));
        cur.probes
            .insert("a".into(), probe(104.0, 1.0, Direction::Lower)); // within 8%
        base.probes
            .insert("b".into(), probe(100.0, 1.0, Direction::Lower));
        cur.probes
            .insert("b".into(), probe(120.0, 1.0, Direction::Lower)); // 20% up
        base.probes
            .insert("c".into(), probe(2.0, 0.01, Direction::Higher));
        cur.probes
            .insert("c".into(), probe(1.5, 0.01, Direction::Higher)); // speedup lost
        base.probes
            .insert("d".into(), probe(100.0, 1.0, Direction::Lower));
        cur.probes
            .insert("d".into(), probe(80.0, 1.0, Direction::Lower)); // improved
        cur.probes
            .insert("e".into(), probe(1.0, 0.0, Direction::Lower)); // new
        base.probes
            .insert("f".into(), probe(1.0, 0.0, Direction::Lower)); // missing
        let verdicts: BTreeMap<String, Verdict> = compare(&base, &cur)
            .into_iter()
            .map(|r| (r.name, r.verdict))
            .collect();
        assert_eq!(verdicts["a"], Verdict::Ok);
        assert_eq!(verdicts["b"], Verdict::Regressed);
        assert_eq!(verdicts["c"], Verdict::Regressed);
        assert_eq!(verdicts["d"], Verdict::Improved);
        assert_eq!(verdicts["e"], Verdict::New);
        assert_eq!(verdicts["f"], Verdict::Missing);
    }

    #[test]
    fn hand_inflated_baseline_makes_check_fail() {
        // The acceptance demo: measuring the same value against a baseline
        // whose value was hand-inflated 20% must regress for a `higher`
        // probe (and symmetrically a deflated `lower` baseline).
        let measured = probe(100.0, 1.0, Direction::Lower);
        let mut inflated = measured.clone();
        inflated.value *= 0.8; // pretend the past was 20% faster
        let mut base = Bench::default();
        let mut cur = Bench::default();
        base.probes.insert("p".into(), inflated);
        cur.probes.insert("p".into(), measured);
        let rows = compare(&base, &cur);
        assert_eq!(rows[0].verdict, Verdict::Regressed, "{}", rows[0].detail);
    }

    #[test]
    fn legacy_pipeline_and_shards_files_convert() {
        let pipeline = r#"{"date":"2026-08-05","run_detailed":[
            {"workload":"gzip @ scale 0.02 (compute-bound)","before_ns_per_inst":160.0,"after_ns_per_inst":128.67,"speedup":1.25},
            {"workload":"interp_stream floor (gzip)","after_ns_per_inst":5.47}],
            "pr7":{"run_detailed":[{"workload":"gzip @ scale 0.02","after_ns_per_inst":107.3}]}}"#;
        let probes = convert_legacy("BENCH_pipeline.json", pipeline).expect("converts");
        let names: Vec<&str> = probes.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"legacy.run_detailed.gzip.ns_per_inst"));
        assert!(names.contains(&"legacy.pr7.run_detailed.gzip.ns_per_inst"));
        let gzip = &probes
            .iter()
            .find(|(n, _)| n.ends_with("pr7.run_detailed.gzip.ns_per_inst"))
            .unwrap()
            .1;
        assert_eq!(gzip.value, 107.3);
        assert_eq!(gzip.direction, Direction::Lower);

        let shards = r#"{"date":"2026-08-09","benchmark":{"runs":[
            {"shards":1,"wall_clock_s":44.9},{"shards":4,"wall_clock_s":44.2}]}}"#;
        let probes = convert_legacy("BENCH_shards.json", shards).expect("converts");
        assert_eq!(probes[0].0, "legacy.shards.1.wall_s");
        assert_eq!(probes[0].1.value, 44.9);

        let already = r#"{"v":1,"schema":"simbench","probes":{}}"#;
        assert!(convert_legacy("x", already)
            .unwrap_err()
            .contains("already"));
        assert!(convert_legacy("y", r#"{"foo":1}"#).is_err());
    }
}
