//! Figure 2: difference between SimPoint's and SMARTS's Euclidean distances
//! from the reference rank vector, as progressively less-significant
//! parameters are included (parameters sorted by reference rank).

use crate::common::{coverage_note, note, prepared_all};
use crate::fig1::design;
use crate::opts::Opts;
use characterize::bottleneck::{
    normalized_rank_distance, pb_ranks, pb_responses, prefix_distances,
};
use characterize::report::{f, Table};
use sim_core::SimConfig;
use simstats::pb::lenth;
use techniques::registry::{simpoint_permutations, smarts_permutations};
use techniques::TechniqueSpec;

/// Per-benchmark prefix-distance difference series (SimPoint − SMARTS),
/// plus the number of statistically significant parameters (Lenth's method
/// on the reference effects) — the point where Figure 2's interesting
/// region ends.
pub type Fig2Data = Vec<(String, Vec<f64>, usize)>;

/// Pick the most accurate permutation of a family (smallest full-rank
/// distance to the reference), as the paper does for Figure 2.
///
/// The candidate permutations fan out over [`sim_exec::par_map`]; the
/// serial argmin over the ordered results keeps tie-breaking (first wins)
/// identical to the sequential loop.
fn best_ranks(
    specs: &[TechniqueSpec],
    prep: &techniques::runner::PreparedBench,
    d: &simstats::pb::PbDesign,
    base: &SimConfig,
    ref_ranks: &[f64],
) -> Option<Vec<f64>> {
    let ranked = sim_exec::par_map(specs, |spec| pb_ranks(spec, prep, d, base));
    let mut best: Option<(f64, Vec<f64>)> = None;
    for r in ranked.into_iter().flatten() {
        let dist = normalized_rank_distance(ref_ranks, &r);
        if best.as_ref().is_none_or(|(b, _)| dist < *b) {
            best = Some((dist, r));
        }
    }
    best.map(|(_, r)| r)
}

/// Run the Figure 2 experiment.
pub fn compute(opts: &Opts) -> Fig2Data {
    let d = design(opts);
    let base = SimConfig::default();
    // Quick mode compares one representative permutation per technique; full
    // mode searches all Table 1 permutations for each family's best.
    let sp_specs = if opts.full {
        simpoint_permutations(opts.scale)
    } else {
        // The multiple-100K (max_k 10) variant, selected by shape rather
        // than registry position.
        let rep = simpoint_permutations(opts.scale)
            .into_iter()
            .find(|s| matches!(s, TechniqueSpec::SimPoint { max_k: 10, .. }))
            .expect("registry provides the max_k=10 variant");
        vec![rep]
    };
    let sm_specs = if opts.full {
        smarts_permutations()
    } else {
        vec![TechniqueSpec::Smarts { u: 1_000, w: 2_000 }]
    };

    let mut data = Vec::new();
    let preps = prepared_all(opts);
    for (bench, prep) in opts.benchmarks.iter().zip(&preps) {
        note(&format!("fig2: {bench}"));
        let ref_responses = pb_responses(&TechniqueSpec::Reference, prep, &d, &base)
            .expect("reference always runs");
        let ref_effects = d.effects(&ref_responses);
        let ref_ranks = simstats::pb::rank_by_magnitude(&ref_effects);
        let n_significant = lenth(&ref_effects, 2.0)
            .significant
            .iter()
            .filter(|&&x| x)
            .count();
        let sp = best_ranks(&sp_specs, prep, &d, &base, &ref_ranks).expect("SimPoint always runs");
        let sm = best_ranks(&sm_specs, prep, &d, &base, &ref_ranks).expect("SMARTS always runs");
        let sp_prefix = prefix_distances(&ref_ranks, &sp);
        let sm_prefix = prefix_distances(&ref_ranks, &sm);
        let diff: Vec<f64> = sp_prefix
            .iter()
            .zip(&sm_prefix)
            .map(|(a, b)| a - b)
            .collect();
        data.push((bench.clone(), diff, n_significant));
    }
    data
}

/// Render the Figure 2 report.
pub fn render(opts: &Opts, data: &Fig2Data) -> String {
    let mut out = String::new();
    out.push_str(
        "Figure 2. Difference in the SimPoint and SMARTS Euclidean Distances\n\
         in Ascending Order of reference Rank (positive = SimPoint farther\n\
         from the reference than SMARTS for the N most significant parameters)\n\n",
    );
    out.push_str(&coverage_note(opts));
    out.push_str("\n\n");
    let mut t = Table::new({
        let mut h = vec!["param #".to_string()];
        h.extend(data.iter().map(|(b, _, _)| b.clone()));
        h
    });
    let n = data.first().map(|(_, v, _)| v.len()).unwrap_or(0);
    for i in 0..n {
        let mut row = vec![(i + 1).to_string()];
        for (_, series, _) in data {
            row.push(f(series[i], 2));
        }
        t.row(row);
    }
    out.push_str(&t.render());

    out.push_str("\nStatistically significant reference parameters (Lenth, 2.0 PSE):\n\n");
    let mut t = Table::new(vec!["benchmark", "# significant of 43"]);
    for (b, _, n_sig) in data {
        t.row(vec![b.clone(), n_sig.to_string()]);
    }
    out.push_str(&t.render());
    out.push_str(
        "\nThe SimPoint-SMARTS differences accumulate mostly beyond the\n\
         significant parameters — the paper's Figure 2 argument.\n",
    );
    out
}

/// Compute and render.
pub fn run(opts: &Opts) -> String {
    let data = compute(opts);
    render(opts, &data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_includes_lenth_summary() {
        let opts = Opts::default();
        let data: Fig2Data = vec![("x".to_string(), vec![0.0, 1.0, 2.0], 2)];
        let s = render(&opts, &data);
        assert!(s.contains("Lenth"));
        assert!(s.contains("# significant"));
    }
}
