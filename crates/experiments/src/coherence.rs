//! The §5.2 coherence meta-analysis, made quantitative.
//!
//! The paper argues that because its three characterization methods agree
//! ("the coherency of the results indicates that the accuracy of each
//! technique is not merely a fortuitous averaging of inaccuracies, but
//! rather an intrinsic property of the technique"), the conclusions are
//! trustworthy. This experiment computes Kendall's τ between the technique
//! orderings the three methods induce.

use crate::common::{coverage_note, note, one_per_family, prepared_all};
use crate::fig1::design;
use crate::opts::Opts;
use characterize::archchar::{arch_characterization, reference_vectors};
use characterize::bottleneck::{normalized_rank_distance, pb_ranks};
use characterize::profilechar::profile_characterization;
use characterize::report::{f, Table};
use sim_core::SimConfig;
use simstats::rank::{kendall_tau, spearman_rho};
use techniques::profile::profile_program;
use techniques::TechniqueSpec;

/// Per-benchmark badness scores of each permutation under the three
/// characterizations (PB distance, BBV χ², architectural distance).
pub struct CoherenceData {
    /// Benchmark name.
    pub bench: String,
    /// Permutation labels.
    pub labels: Vec<String>,
    /// Bottleneck (PB) distances.
    pub pb: Vec<f64>,
    /// Execution-profile χ² statistics (log10).
    pub profile: Vec<f64>,
    /// Architectural-metric distances.
    pub arch: Vec<f64>,
}

/// Compute the three scores for each quick permutation on each benchmark.
pub fn compute(opts: &Opts) -> Vec<CoherenceData> {
    let d = design(opts);
    let base = SimConfig::default();
    let arch_configs = vec![SimConfig::table3(1), SimConfig::table3(2)];
    let specs = one_per_family(opts);
    let mut out = Vec::new();

    let preps = prepared_all(opts);
    for (bench, prep) in opts.benchmarks.iter().zip(&preps) {
        note(&format!("coherence: {bench}"));
        let ref_ranks =
            pb_ranks(&TechniqueSpec::Reference, prep, &d, &base).expect("reference runs");
        let ref_profile = profile_program(prep.reference());
        let arch_refs = reference_vectors(prep, &arch_configs);

        // All three scores per permutation, fanned over the permutations;
        // results come back in spec order, so the serial filtering below
        // matches the sequential loop.
        let scores = sim_exec::par_map(&specs, |spec| {
            let ranks = pb_ranks(spec, prep, &d, &base)?;
            let pc = profile_characterization(spec, prep, &ref_profile, 0.05)?;
            let ac = arch_characterization(spec, prep, &arch_configs, &arch_refs)?;
            Some((
                spec.label(),
                normalized_rank_distance(&ref_ranks, &ranks),
                pc.bbv.statistic.max(1.0).log10(),
                ac.mean,
            ))
        });

        let mut labels = Vec::new();
        let mut pb = Vec::new();
        let mut profile = Vec::new();
        let mut arch = Vec::new();
        for (label, p, pr, a) in scores.into_iter().flatten() {
            labels.push(label);
            pb.push(p);
            profile.push(pr);
            arch.push(a);
        }
        out.push(CoherenceData {
            bench: bench.clone(),
            labels,
            pb,
            profile,
            arch,
        });
    }
    out
}

/// Render the coherence report.
pub fn render(opts: &Opts, data: &[CoherenceData]) -> String {
    let mut out = String::new();
    out.push_str(
        "Coherence of the three characterization methods (section 5.2):\n\
         Kendall tau between the technique orderings each method induces\n\
         (1.0 = identical ordering).\n\n",
    );
    out.push_str(&coverage_note(opts));
    out.push_str("\n\n");
    for d in data {
        out.push_str(&format!("--- {} ---\n", d.bench));
        let mut t = Table::new(vec![
            "permutation",
            "PB dist",
            "log10 BBV chi2",
            "arch dist",
        ]);
        for (i, l) in d.labels.iter().enumerate() {
            t.row(vec![
                l.clone(),
                f(d.pb[i], 1),
                f(d.profile[i], 2),
                f(d.arch[i], 4),
            ]);
        }
        out.push_str(&t.render());
        if d.labels.len() >= 2 {
            let mut t = Table::new(vec!["method pair", "Kendall tau", "Spearman rho"]);
            for (name, a, b) in [
                ("PB vs profile", &d.pb, &d.profile),
                ("PB vs architectural", &d.pb, &d.arch),
                ("profile vs architectural", &d.profile, &d.arch),
            ] {
                t.row(vec![
                    name.to_string(),
                    f(kendall_tau(a, b), 2),
                    f(spearman_rho(a, b), 2),
                ]);
            }
            out.push_str(&t.render());
        }
        out.push('\n');
    }
    out.push_str(
        "Positive correlations across all pairs mean the three methods agree\n\
         on which techniques are accurate — the paper's meta-conclusion.\n",
    );
    out
}

/// Compute and render.
pub fn run(opts: &Opts) -> String {
    let data = compute(opts);
    render(opts, &data)
}
