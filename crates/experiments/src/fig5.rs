//! Figure 5: configuration dependence — histogram of CPI error (relative to
//! the reference) over the configuration envelope, for the worst and best
//! permutation of each technique, aggregated over benchmarks.

use crate::common::{coverage_note, note, permutations, prepared_all};
use crate::fig34::svat_configs;
use crate::opts::Opts;
use characterize::configdep::{config_dependence, worst_and_best, ConfigDependence};
use characterize::report::{f, Table};
use characterize::svat::reference_cpis;
use simstats::histogram::ErrorHistogram;
use techniques::{TechniqueKind, TechniqueSpec};

/// Aggregated Figure 5 data: per family, the worst and best permutation's
/// histogram over all (benchmark, configuration) pairs.
pub type Fig5Data = Vec<(TechniqueKind, ConfigDependence, ConfigDependence)>;

/// Run the Figure 5 experiment.
pub fn compute(opts: &Opts) -> Fig5Data {
    let configs = svat_configs(opts);
    let specs = permutations(opts);

    // Aggregate per-permutation errors across benchmarks.
    let mut agg: Vec<(TechniqueSpec, Vec<f64>)> =
        specs.iter().map(|s| (s.clone(), Vec::new())).collect();
    let preps = prepared_all(opts);
    for (bench, prep) in opts.benchmarks.iter().zip(&preps) {
        note(&format!(
            "fig5: {bench} across {} configurations",
            configs.len()
        ));
        let refs = reference_cpis(prep, &configs);
        // Permutations are independent; results come back in spec order,
        // so the aggregation matches the serial loop exactly.
        let deps = sim_exec::par_map(&specs, |spec| {
            config_dependence(spec, prep, &configs, &refs)
        });
        for ((_, errors), dep) in agg.iter_mut().zip(deps) {
            if let Some(dep) = dep {
                errors.extend(dep.errors);
            }
        }
    }

    let deps: Vec<ConfigDependence> = agg
        .into_iter()
        .filter(|(_, e)| !e.is_empty())
        .map(|(spec, errors)| {
            let mut histogram = ErrorHistogram::new();
            for &e in &errors {
                histogram.record(e);
            }
            ConfigDependence {
                label: spec.label(),
                histogram,
                errors,
            }
        })
        .collect();

    let mut data = Vec::new();
    let all_specs = permutations(opts);
    let spec_of = |label: &str| {
        all_specs
            .iter()
            .find(|s| s.label() == label)
            .expect("label round-trips")
            .clone()
    };
    for kind in TechniqueKind::ALTERNATIVES {
        let family: Vec<ConfigDependence> = deps
            .iter()
            .filter(|d| spec_of(&d.label).kind() == kind)
            .cloned()
            .collect();
        if let Some((worst, best)) = worst_and_best(&family) {
            data.push((kind, family[worst].clone(), family[best].clone()));
        }
    }
    data
}

/// Render the Figure 5 report.
pub fn render(opts: &Opts, data: &Fig5Data) -> String {
    let mut out = String::new();
    out.push_str(
        "Figure 5. Configuration Dependence: Histogram of CPI Error (Relative\n\
         to reference) for All Benchmarks — worst (left) and best (right)\n\
         permutation per technique; cells are % of configurations\n\n",
    );
    out.push_str(&coverage_note(opts));
    out.push_str("\n\n");
    let labels = ErrorHistogram::labels();
    let mut headers = vec!["error range".to_string()];
    for (kind, worst, best) in data {
        if worst.label == best.label {
            headers.push(format!("{}: {}", kind.name(), worst.label));
        } else {
            headers.push(format!("{} worst: {}", kind.name(), worst.label));
            headers.push(format!("{} best: {}", kind.name(), best.label));
        }
    }
    let mut t = Table::new(headers);
    for (i, lab) in labels.iter().enumerate().rev() {
        let mut row = vec![lab.to_string()];
        for (_, worst, best) in data {
            row.push(f(worst.histogram.percentages()[i], 1));
            if worst.label != best.label {
                row.push(f(best.histogram.percentages()[i], 1));
            }
        }
        t.row(row);
    }
    out.push_str(&t.render());

    out.push_str("\nError trend (consistent sign => correctable bias):\n\n");
    let mut t = Table::new(vec![
        "technique",
        "permutation",
        "% within 3%",
        "error trends?",
    ]);
    for (kind, worst, best) in data {
        let both = if worst.label == best.label {
            vec![worst]
        } else {
            vec![worst, best]
        };
        for d in both {
            t.row(vec![
                kind.name().to_string(),
                d.label.clone(),
                f(d.histogram.pct_within_3(), 1),
                if d.error_trends() { "yes" } else { "no" }.to_string(),
            ]);
        }
    }
    out.push_str(&t.render());
    out
}

/// Compute and render.
pub fn run(opts: &Opts) -> String {
    let data = compute(opts);
    render(opts, &data)
}
