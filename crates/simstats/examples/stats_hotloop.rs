//! Wall-clock probe of the statistics kernels (the simstats counterpart of
//! `workloads/examples/pipeline_hotloop`). Criterion lives in the
//! out-of-workspace `crates/bench` crate, so this dependency-free example is
//! the offline way to compare the scalar loops against the lane-parallel
//! kernels — the k-means numbers recorded in `BENCH_pipeline.json` come from:
//!
//! ```text
//! cargo run --release -p simstats --example stats_hotloop
//! ```
//!
//! The scalar baseline is the loop shape the code used before the `kernel`
//! module: one squared distance per centroid, each a serial f64 reduction
//! the compiler cannot vectorize. The kernel computes the same sums in
//! parallel lanes across centroids/factors (bit-identical per lane — the
//! example asserts it).

use simstats::kernel::{argmin, padded_lanes, sq_dist, sq_dists_dim_major, transpose_centroids};
use simstats::pb::PbDesign;
use simstats::rng::SplitMix64;
use std::time::Instant;

const REPS: usize = 7;

fn measure<F: FnMut() -> u64>(label: &str, work: u64, mut f: F) -> f64 {
    f(); // warm-up
    let mut best = f64::INFINITY;
    let mut sink = 0u64;
    for _ in 0..REPS {
        let t0 = Instant::now();
        sink ^= f();
        let dt = t0.elapsed().as_secs_f64();
        if dt < best {
            best = dt;
        }
    }
    let ns = best * 1e9 / work as f64;
    println!("{label:<34} {ns:>9.3} ns/unit   (sink {sink:x})");
    ns
}

fn main() {
    // SimPoint-shaped data: projected BBVs (15 dims) and raw-ish BBVs
    // (64 dims), k in the range BIC model selection actually explores.
    for &(n, dim, k) in &[(2000usize, 15usize, 30usize), (1000, 64, 16)] {
        let mut rng = SplitMix64::new(0xbeef ^ (n as u64) << 8 ^ dim as u64);
        let data: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..dim).map(|_| rng.unit_f64() * 100.0).collect())
            .collect();
        let centroids: Vec<Vec<f64>> = (0..k)
            .map(|_| (0..dim).map(|_| rng.unit_f64() * 100.0).collect())
            .collect();
        let lanes = padded_lanes(k);
        let cent_t = transpose_centroids(&centroids);
        println!("kmeans assign: n={n} dim={dim} k={k}, best of {REPS} reps, ns/point");

        let d_scalar = measure("  distances scalar (pre-kernel)", n as u64, || {
            let mut acc = 0u64;
            for p in &data {
                for cent in &centroids {
                    acc = acc.wrapping_add(sq_dist(p, cent).to_bits());
                }
            }
            acc
        });
        let mut dists = vec![0.0; lanes];
        let d_kern = measure("  distances dim-major kernel", n as u64, || {
            let mut acc = 0u64;
            for p in &data {
                sq_dists_dim_major(p, &cent_t, lanes, &mut dists);
                for d in &dists[..k] {
                    acc = acc.wrapping_add(d.to_bits());
                }
            }
            acc
        });
        println!("  distance-kernel speedup: {:.2}x", d_scalar / d_kern);

        let scalar = measure("  assign scalar (pre-kernel)", n as u64, || {
            let mut acc = 0u64;
            for p in &data {
                let mut best = (f64::INFINITY, 0usize);
                for (c, cent) in centroids.iter().enumerate() {
                    let d = sq_dist(p, cent);
                    if d < best.0 {
                        best = (d, c);
                    }
                }
                acc = acc.wrapping_add(best.1 as u64);
            }
            acc
        });
        let kern = measure("  assign dim-major kernel", n as u64, || {
            let mut acc = 0u64;
            for p in &data {
                sq_dists_dim_major(p, &cent_t, lanes, &mut dists);
                acc = acc.wrapping_add(argmin(&dists[..k]) as u64);
            }
            acc
        });
        println!("  speedup: {:.2}x", scalar / kern);

        // Bit-identity spot check on this data.
        let p = &data[n / 2];
        sq_dists_dim_major(p, &cent_t, lanes, &mut dists);
        for (c, cent) in centroids.iter().enumerate() {
            assert_eq!(
                dists[c].to_bits(),
                sq_dist(p, cent).to_bits(),
                "lane {c} diverged from scalar bits"
            );
        }
    }

    // PB effects over the paper's 43-factor folded design.
    let design = PbDesign::new(43).with_foldover();
    let mut rng = SplitMix64::new(7);
    let responses: Vec<f64> = (0..design.num_runs())
        .map(|_| rng.unit_f64() * 3.0)
        .collect();
    let iters = 20_000u64;
    println!(
        "pb effects: {} runs x {} factors, ns/effects() call",
        design.num_runs(),
        design.num_factors()
    );
    measure("  effects run-major kernel", iters, || {
        let mut acc = 0u64;
        for _ in 0..iters {
            let eff = design.effects(&responses);
            acc = acc.wrapping_add(eff[0].to_bits());
        }
        acc
    });
}
