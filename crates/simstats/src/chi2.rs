//! The χ² goodness-of-fit machinery for the execution-profile
//! characterization (§4.2): compare a technique's basic-block distribution
//! (BBEF or BBV) against the reference input set's.
//!
//! Includes a self-contained regularized incomplete gamma implementation for
//! the χ² CDF (p-values) and the Wilson–Hilferty approximation for critical
//! values at the very large degrees of freedom that real basic-block
//! profiles produce.

/// Natural log of the gamma function (Lanczos approximation, |err| < 2e-10).
pub fn ln_gamma(x: f64) -> f64 {
    // Lanczos coefficients (g=7, n=9).
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        return std::f64::consts::PI.ln()
            - (std::f64::consts::PI * x).sin().ln()
            - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + 7.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized lower incomplete gamma `P(a, x)`.
///
/// Series expansion for `x < a+1`, continued fraction otherwise
/// (Numerical Recipes `gammp`).
pub fn gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "gamma_p requires a > 0, x >= 0");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        // Series representation.
        let mut ap = a;
        let mut sum = 1.0 / a;
        let mut del = sum;
        for _ in 0..500 {
            ap += 1.0;
            del *= x / ap;
            sum += del;
            if del.abs() < sum.abs() * 1e-15 {
                break;
            }
        }
        sum * (-x + a * x.ln() - ln_gamma(a)).exp()
    } else {
        // Continued fraction for Q(a,x), then P = 1 - Q.
        let mut b = x + 1.0 - a;
        let mut c = 1.0 / 1e-300;
        let mut d = 1.0 / b;
        let mut h = d;
        for i in 1..500 {
            let an = -(i as f64) * (i as f64 - a);
            b += 2.0;
            d = an * d + b;
            if d.abs() < 1e-300 {
                d = 1e-300;
            }
            c = b + an / c;
            if c.abs() < 1e-300 {
                c = 1e-300;
            }
            d = 1.0 / d;
            let del = d * c;
            h *= del;
            if (del - 1.0).abs() < 1e-15 {
                break;
            }
        }
        1.0 - (-x + a * x.ln() - ln_gamma(a)).exp() * h
    }
}

/// CDF of the χ² distribution with `df` degrees of freedom.
pub fn chi2_cdf(x: f64, df: f64) -> f64 {
    if x <= 0.0 {
        0.0
    } else {
        gamma_p(df / 2.0, x / 2.0)
    }
}

/// Approximate upper critical value of χ² at significance `alpha`
/// (Wilson–Hilferty; excellent for the df in the hundreds-to-millions this
/// study produces).
pub fn chi2_critical(df: f64, alpha: f64) -> f64 {
    assert!(df > 0.0 && (0.0..1.0).contains(&alpha));
    let z = normal_quantile(1.0 - alpha);
    let t = 1.0 - 2.0 / (9.0 * df) + z * (2.0 / (9.0 * df)).sqrt();
    df * t * t * t
}

/// Quantile of the standard normal distribution (Acklam's rational
/// approximation, |rel err| < 1.2e-9).
pub fn normal_quantile(p: f64) -> f64 {
    assert!((0.0..1.0).contains(&p) && p > 0.0, "p must be in (0,1)");
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    let p_low = 0.02425;
    if p < p_low {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - p_low {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -normal_quantile(1.0 - p)
    }
}

/// Result of a χ² comparison of two count distributions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Chi2Result {
    /// The χ² test statistic.
    pub statistic: f64,
    /// Degrees of freedom (bins compared − 1).
    pub df: f64,
    /// Upper critical value at the chosen significance.
    pub critical: f64,
    /// `statistic <= critical`: the distributions are statistically similar
    /// (the paper's similarity criterion).
    pub similar: bool,
}

/// Compare `observed` against `expected` counts with a χ² test at
/// significance `alpha`.
///
/// ```
/// use simstats::chi2::chi2_compare;
///
/// let reference = [800.0, 150.0, 50.0];
/// let same_shape = [80.0, 15.0, 5.0]; // shorter run, same composition
/// assert!(chi2_compare(&same_shape, &reference, 0.05).similar);
/// let skewed = [50.0, 15.0, 80.0];
/// assert!(!chi2_compare(&skewed, &reference, 0.05).similar);
/// ```
///
/// The observed distribution is rescaled to the expected total (the two
/// windows have different lengths), and bins where both are zero are
/// skipped. Bins where only the expectation is zero contribute the rescaled
/// observation itself (the limit of `(O-E)²/E` regularized with `E -> 1`),
/// so executing *new* blocks is penalized rather than ignored.
///
/// # Panics
/// Panics if lengths differ or `expected` sums to zero.
pub fn chi2_compare(observed: &[f64], expected: &[f64], alpha: f64) -> Chi2Result {
    assert_eq!(observed.len(), expected.len(), "distributions must align");
    let tot_o: f64 = observed.iter().sum();
    let tot_e: f64 = expected.iter().sum();
    assert!(tot_e > 0.0, "expected distribution is empty");
    let scale = if tot_o > 0.0 { tot_e / tot_o } else { 1.0 };

    let (stat, bins) = crate::kernel::chi2_stat(observed, expected, scale);
    let df = (bins.max(2) - 1) as f64;
    let critical = chi2_critical(df, alpha);
    Chi2Result {
        statistic: stat,
        df,
        critical,
        similar: stat <= critical,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_known_values() {
        assert!((ln_gamma(1.0)).abs() < 1e-10); // Γ(1)=1
        assert!((ln_gamma(2.0)).abs() < 1e-10); // Γ(2)=1
        assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-9); // Γ(5)=24
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-9);
    }

    #[test]
    fn gamma_p_limits() {
        assert_eq!(gamma_p(2.0, 0.0), 0.0);
        assert!(gamma_p(2.0, 100.0) > 0.999999);
        // P(1, x) = 1 - e^-x.
        for x in [0.1, 1.0, 3.0] {
            assert!((gamma_p(1.0, x) - (1.0 - (-x).exp())).abs() < 1e-10);
        }
    }

    #[test]
    fn chi2_cdf_median_is_near_df() {
        // For large df, the median of chi2(df) ~ df(1-2/(9df))^3 ≈ df.
        let df = 100.0;
        let c = chi2_cdf(df, df);
        assert!((0.45..0.55).contains(&c), "CDF at df = {c}");
    }

    #[test]
    fn chi2_critical_matches_tables() {
        // chi2(0.95; 10) = 18.307, chi2(0.95; 100) = 124.342.
        assert!((chi2_critical(10.0, 0.05) - 18.307).abs() < 0.2);
        assert!((chi2_critical(100.0, 0.05) - 124.342).abs() < 0.3);
    }

    #[test]
    fn normal_quantile_matches_tables() {
        assert!((normal_quantile(0.975) - 1.959964).abs() < 1e-5);
        assert!((normal_quantile(0.5)).abs() < 1e-8);
        assert!((normal_quantile(0.8413) - 1.0).abs() < 1e-3);
        assert!((normal_quantile(0.0013499) + 3.0).abs() < 1e-3);
    }

    #[test]
    fn identical_distributions_are_similar() {
        let d = vec![100.0, 200.0, 300.0, 50.0];
        let r = chi2_compare(&d, &d, 0.05);
        assert_eq!(r.statistic, 0.0);
        assert!(r.similar);
    }

    #[test]
    fn scaled_identical_distributions_are_similar() {
        let e = vec![100.0, 200.0, 300.0];
        let o: Vec<f64> = e.iter().map(|x| x / 10.0).collect();
        let r = chi2_compare(&o, &e, 0.05);
        assert!(r.statistic < 1e-9);
        assert!(r.similar);
    }

    #[test]
    fn very_different_distributions_are_dissimilar() {
        let e = vec![1000.0, 10.0, 10.0, 10.0];
        let o = vec![10.0, 1000.0, 10.0, 10.0];
        let r = chi2_compare(&o, &e, 0.05);
        assert!(
            !r.similar,
            "statistic {} vs critical {}",
            r.statistic, r.critical
        );
    }

    #[test]
    fn new_blocks_in_observed_are_penalized() {
        let e = vec![100.0, 0.0];
        let o = vec![100.0, 100.0];
        let r = chi2_compare(&o, &e, 0.05);
        assert!(r.statistic > 0.0);
    }

    #[test]
    fn statistic_grows_with_divergence() {
        let e = vec![500.0, 500.0];
        let near = chi2_compare(&[510.0, 490.0], &e, 0.05);
        let far = chi2_compare(&[900.0, 100.0], &e, 0.05);
        assert!(far.statistic > near.statistic * 10.0);
    }
}
