//! The CPI-error histogram of the configuration-dependence analysis
//! (Figure 5): bucket |CPI error| into 3%-wide ranges up to 30%, plus a
//! ">30%" bucket.

/// Figure 5's buckets: `0-3%, 3-6%, …, 27-30%, >30%` (11 buckets).
pub const NUM_BUCKETS: usize = 11;

/// A histogram over the Figure 5 buckets.
///
/// ```
/// use simstats::histogram::ErrorHistogram;
///
/// let mut h = ErrorHistogram::new();
/// for err in [1.2, -2.0, 4.5, 40.0] {
///     h.record(err);
/// }
/// assert_eq!(h.pct_within_3(), 50.0);
/// assert_eq!(h.counts()[10], 1); // the > 30% bucket
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ErrorHistogram {
    counts: [u64; NUM_BUCKETS],
    total: u64,
}

impl ErrorHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bucket index for an absolute percent error.
    pub fn bucket_of(abs_percent_error: f64) -> usize {
        if abs_percent_error.is_nan() {
            return NUM_BUCKETS - 1;
        }
        let b = (abs_percent_error / 3.0).floor();
        if !(0.0..10.0).contains(&b) {
            NUM_BUCKETS - 1
        } else {
            b as usize
        }
    }

    /// Record one configuration's percent CPI error (sign ignored).
    pub fn record(&mut self, percent_error: f64) {
        self.counts[Self::bucket_of(percent_error.abs())] += 1;
        self.total += 1;
    }

    /// Percentage of recorded configurations falling in each bucket.
    pub fn percentages(&self) -> [f64; NUM_BUCKETS] {
        let mut out = [0.0; NUM_BUCKETS];
        if self.total == 0 {
            return out;
        }
        for (o, &c) in out.iter_mut().zip(&self.counts) {
            *o = c as f64 / self.total as f64 * 100.0;
        }
        out
    }

    /// Raw counts.
    pub fn counts(&self) -> &[u64; NUM_BUCKETS] {
        &self.counts
    }

    /// Total recorded configurations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Fraction (0–100) of configurations in the 0–3% bucket — the paper's
    /// criterion for picking each technique's best/worst permutation.
    pub fn pct_within_3(&self) -> f64 {
        self.percentages()[0]
    }

    /// Bucket labels, bottom-up as in Figure 5's legend.
    pub fn labels() -> [&'static str; NUM_BUCKETS] {
        [
            "0% to 3%",
            "3% to 6%",
            "6% to 9%",
            "9% to 12%",
            "12% to 15%",
            "15% to 18%",
            "18% to 21%",
            "21% to 24%",
            "24% to 27%",
            "27% to 30%",
            "> 30%",
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(ErrorHistogram::bucket_of(0.0), 0);
        assert_eq!(ErrorHistogram::bucket_of(2.999), 0);
        assert_eq!(ErrorHistogram::bucket_of(3.0), 1);
        assert_eq!(ErrorHistogram::bucket_of(29.999), 9);
        assert_eq!(ErrorHistogram::bucket_of(30.0), 10);
        assert_eq!(ErrorHistogram::bucket_of(1000.0), 10);
    }

    #[test]
    fn negative_errors_use_magnitude() {
        let mut h = ErrorHistogram::new();
        h.record(-5.0);
        assert_eq!(h.counts()[1], 1);
    }

    #[test]
    fn percentages_sum_to_100() {
        let mut h = ErrorHistogram::new();
        for e in [1.0, 2.0, 4.0, 10.0, 35.0] {
            h.record(e);
        }
        let sum: f64 = h.percentages().iter().sum();
        assert!((sum - 100.0).abs() < 1e-9);
        assert_eq!(h.total(), 5);
        assert!((h.pct_within_3() - 40.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = ErrorHistogram::new();
        assert_eq!(h.percentages(), [0.0; NUM_BUCKETS]);
        assert_eq!(h.pct_within_3(), 0.0);
    }

    #[test]
    fn nan_goes_to_overflow_bucket() {
        let mut h = ErrorHistogram::new();
        h.record(f64::NAN);
        assert_eq!(h.counts()[NUM_BUCKETS - 1], 1);
    }

    #[test]
    fn labels_match_bucket_count() {
        assert_eq!(ErrorHistogram::labels().len(), NUM_BUCKETS);
    }
}
