//! Self-contained SplitMix64 PRNG.
//!
//! Statistical algorithms here (k-means seeding, random projection) must be
//! reproducible across toolchain and dependency versions, so they use this
//! fixed generator rather than an external crate.

/// SplitMix64 generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`. `bound` must be nonzero.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = SplitMix64::new(3);
        let mut b = SplitMix64::new(3);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn unit_f64_in_range() {
        let mut r = SplitMix64::new(8);
        for _ in 0..1000 {
            let v = r.unit_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn below_in_range() {
        let mut r = SplitMix64::new(9);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
        }
    }
}
