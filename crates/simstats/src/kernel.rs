//! Shared auto-vectorizable inner loops for the statistics hot paths.
//!
//! Every kernel here preserves the *exact* floating-point accumulation
//! order of the scalar loop it replaces, because experiment reports are
//! compared byte-for-byte across runs and revisions. That rules out
//! reassociating any single reduction (f64 addition is not associative);
//! what it does not rule out is computing many *independent* reductions in
//! parallel lanes — each lane still sees its terms in the original order.
//! The k-means assignment step (one squared distance per centroid) and the
//! Plackett–Burman effect sums (one signed sum per factor) have exactly
//! that shape, so they are laid out dimension-major/run-major here and the
//! compiler vectorizes across the output lanes.
//!
//! The χ² statistic is a *single* serial reduction, so it cannot be
//! chunked without changing the reported bits; [`chi2_stat`] keeps the
//! serial order and exists so every caller shares one definition.

/// Squared Euclidean distance, accumulated left to right (the shared
/// definition behind [`crate::dist::euclidean`] and k-means).
#[inline]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// One register block of `B` centroid lanes: accumulators live in registers
/// across the whole dimension loop (no per-element load/store of `out`),
/// and each lane sees its terms in increasing-`j` order.
#[inline(always)]
fn sq_dists_block<const B: usize>(p: &[f64], cent_t: &[f64], k: usize, base: usize) -> [f64; B] {
    let mut acc = [0.0f64; B];
    for (j, &x) in p.iter().enumerate() {
        let row = &cent_t[j * k + base..j * k + base + B];
        for (a, &c) in acc.iter_mut().zip(row) {
            let d = x - c;
            *a += d * d;
        }
    }
    acc
}

/// The blocked dimension-major distance loop: `L`-lane blocks, then 4-lane
/// blocks, then strided single lanes, so short `k` (SimPoint explores k up
/// to ~30) stays on vector code for all but `k % 4` centroids.
#[inline(always)]
fn sq_dists_body<const L: usize>(p: &[f64], cent_t: &[f64], k: usize, out: &mut [f64]) {
    let mut base = 0;
    while base + L <= k {
        out[base..base + L].copy_from_slice(&sq_dists_block::<L>(p, cent_t, k, base));
        base += L;
    }
    while base + 4 <= k {
        out[base..base + 4].copy_from_slice(&sq_dists_block::<4>(p, cent_t, k, base));
        base += 4;
    }
    for c in base..k {
        let mut a = 0.0;
        for (j, &x) in p.iter().enumerate() {
            let d = x - cent_t[j * k + c];
            a += d * d;
        }
        out[c] = a;
    }
}

/// The same body compiled with AVX2 enabled (4 f64 per vector instead of
/// the SSE2 baseline's 2). Only `avx2` is enabled — not `fma` — so
/// multiplies and adds stay separate IEEE-rounded operations and the lanes
/// remain bit-identical to the scalar order. Same reasoning for the
/// AVX-512 tier below (8 f64 per vector, two registers per 16-lane block).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
fn sq_dists_body_avx2(p: &[f64], cent_t: &[f64], k: usize, out: &mut [f64]) {
    sq_dists_body::<8>(p, cent_t, k, out);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx512f")]
fn sq_dists_body_avx512(p: &[f64], cent_t: &[f64], k: usize, out: &mut [f64]) {
    sq_dists_body::<16>(p, cent_t, k, out);
}

/// Squared distances from point `p` to `k` centroids stored
/// dimension-major: `cent_t[j * k + c]` is dimension `j` of centroid `c`.
///
/// `out[c]` accumulates `(p[j] - cent)²` in increasing-`j` order — the same
/// order the per-centroid scalar loop uses — so each lane's result is
/// bit-identical to `sq_dist(p, centroid_c)` on every dispatch path, while
/// the inner loop runs across register-blocked lanes (AVX-512/AVX2 when the
/// host has them, baseline vectors otherwise).
///
/// # Panics
/// Panics if `out.len() != k` or `cent_t.len() != p.len() * k`.
pub fn sq_dists_dim_major(p: &[f64], cent_t: &[f64], k: usize, out: &mut [f64]) {
    assert_eq!(out.len(), k, "one output lane per centroid");
    assert_eq!(cent_t.len(), p.len() * k, "dimension-major centroid matrix");
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: each call is guarded by its runtime feature check.
        if std::arch::is_x86_feature_detected!("avx512f") {
            return unsafe { sq_dists_body_avx512(p, cent_t, k, out) };
        }
        if std::arch::is_x86_feature_detected!("avx2") {
            return unsafe { sq_dists_body_avx2(p, cent_t, k, out) };
        }
    }
    sq_dists_body::<8>(p, cent_t, k, out);
}

/// Transpose row-major centroids (`centroids[c][j]`) into the
/// dimension-major layout [`sq_dists_dim_major`] consumes, padded to
/// [`padded_lanes`] lanes by replicating the last centroid so every lane
/// runs on the vector path (the duplicate lanes can never win an argmin
/// that a real lane would not also win, and callers take
/// `argmin(&dists[..k])` anyway).
///
/// # Panics
/// Panics if the centroids have unequal dimensions.
pub fn transpose_centroids(centroids: &[Vec<f64>]) -> Vec<f64> {
    let k = centroids.len();
    let lanes = padded_lanes(k);
    let dim = centroids.first().map_or(0, Vec::len);
    let mut cent_t = vec![0.0; dim * lanes];
    for c in 0..lanes {
        let cent = &centroids[c.min(k - 1)];
        assert_eq!(cent.len(), dim, "centroid dimensions must agree");
        for (j, &v) in cent.iter().enumerate() {
            cent_t[j * lanes + c] = v;
        }
    }
    cent_t
}

/// Lane count [`transpose_centroids`] pads `k` centroids to (the next
/// multiple of the smallest register block). Size distance buffers with
/// this and read only the first `k` entries.
pub fn padded_lanes(k: usize) -> usize {
    k.next_multiple_of(4)
}

/// Index of the smallest value, first occurrence winning ties — the
/// argmin rule the scalar assignment loop used (`<`, not `<=`).
#[inline]
pub fn argmin(values: &[f64]) -> usize {
    let mut best = (f64::INFINITY, 0usize);
    for (i, &v) in values.iter().enumerate() {
        if v < best.0 {
            best = (v, i);
        }
    }
    best.1
}

/// Per-factor signed sums for a Plackett–Burman design: lane `f`
/// accumulates `sign(rows[r][f]) * responses[r]` in increasing-`r` order.
/// Run-major iteration keeps each factor's terms in the same order as the
/// factor-at-a-time scalar loop (bit-identical lanes) while the inner loop
/// vectorizes across factors.
///
/// # Panics
/// Panics if a row is shorter than `factors`.
pub fn signed_lane_sums(rows: &[Vec<i8>], responses: &[f64], factors: usize) -> Vec<f64> {
    let mut acc = vec![0.0; factors];
    for (row, &y) in rows.iter().zip(responses) {
        let row = &row[..factors];
        for (a, &s) in acc.iter_mut().zip(row) {
            *a += f64::from(s) * y;
        }
    }
    acc
}

/// The χ² statistic accumulation: observed values are rescaled by `scale`,
/// zero-expectation bins use the `E -> 1` regularization, and bins where
/// both sides are zero are skipped. Returns `(statistic, counted_bins)`.
///
/// This is a single serial reduction; its term order is the report
/// contract, so it is deliberately *not* chunked into parallel lanes.
pub fn chi2_stat(observed: &[f64], expected: &[f64], scale: f64) -> (f64, usize) {
    let mut stat = 0.0;
    let mut bins = 0usize;
    for (&o, &e) in observed.iter().zip(expected) {
        let os = o * scale;
        if e > 0.0 {
            let d = os - e;
            stat += d * d / e;
            bins += 1;
        } else if os > 0.0 {
            stat += os * os; // E -> 1 regularization
            bins += 1;
        }
    }
    (stat, bins)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar_sq_dists(p: &[f64], centroids: &[Vec<f64>]) -> Vec<f64> {
        centroids.iter().map(|c| sq_dist(p, c)).collect()
    }

    #[test]
    fn dim_major_distances_are_bit_identical_to_scalar() {
        // Awkward magnitudes so any reassociation would change the bits.
        let mut x = 0.123_456_789_f64;
        let mut next = || {
            x = (x * 1.000_000_11 + 0.618_033_98) % 3.0;
            x * 1e3 - 1.5e3
        };
        let dim = 17;
        let k = 7;
        let centroids: Vec<Vec<f64>> = (0..k).map(|_| (0..dim).map(|_| next()).collect()).collect();
        let p: Vec<f64> = (0..dim).map(|_| next()).collect();

        let lanes = padded_lanes(k);
        let cent_t = transpose_centroids(&centroids);
        let mut out = vec![0.0; lanes];
        sq_dists_dim_major(&p, &cent_t, lanes, &mut out);
        let reference = scalar_sq_dists(&p, &centroids);
        for (lane, exact) in out.iter().zip(&reference) {
            assert_eq!(
                lane.to_bits(),
                exact.to_bits(),
                "lane must match scalar bits"
            );
        }
        for pad in &out[k..] {
            assert_eq!(
                pad.to_bits(),
                reference[k - 1].to_bits(),
                "pad lanes replicate"
            );
        }
    }

    #[test]
    fn signed_lane_sums_match_factor_at_a_time_bits() {
        let rows: Vec<Vec<i8>> = vec![
            vec![1, -1, 1, -1],
            vec![1, 1, -1, -1],
            vec![-1, 1, 1, -1],
            vec![-1, -1, -1, 1],
        ];
        let y = [0.1, 0.223, 3.7e-3, 1.9];
        let lanes = signed_lane_sums(&rows, &y, 4);
        for f in 0..4 {
            let scalar: f64 = rows
                .iter()
                .zip(&y)
                .map(|(row, &v)| f64::from(row[f]) * v)
                .sum();
            assert_eq!(lanes[f].to_bits(), scalar.to_bits());
        }
    }

    #[test]
    fn argmin_prefers_first_of_equal_values() {
        assert_eq!(argmin(&[3.0, 1.0, 1.0, 2.0]), 1);
        assert_eq!(argmin(&[f64::INFINITY]), 0);
    }

    #[test]
    fn chi2_stat_counts_and_regularizes() {
        let (stat, bins) = chi2_stat(&[1.0, 0.0, 2.0], &[1.0, 0.0, 0.0], 1.0);
        assert_eq!(bins, 2, "both-zero bin skipped");
        assert_eq!(stat, 0.0 + 4.0, "zero-expectation bin adds os²");
    }
}
