//! Rank-correlation statistics: Kendall's τ and Spearman's ρ.
//!
//! Used by the coherence analysis: the paper's meta-conclusion (§5.2) is
//! that its three characterization methods *agree* on how the techniques
//! order — "the coherency of the results indicates that the accuracy of
//! each technique is … an intrinsic property of the technique". Rank
//! correlation quantifies that agreement.

/// Kendall's τ-a between two equal-length score vectors (higher score =
/// worse technique, say). Returns a value in `[-1, 1]`; 1 = identical
/// ordering, −1 = reversed. Pairs tied in either vector contribute 0.
///
/// ```
/// use simstats::rank::kendall_tau;
///
/// // Two accuracy metrics that rank three techniques the same way.
/// let pb_distance = [3.0, 60.0, 25.0];
/// let chi_square = [1e3, 1e7, 1e5];
/// assert_eq!(kendall_tau(&pb_distance, &chi_square), 1.0);
/// ```
///
/// # Panics
/// Panics if the lengths differ or fewer than 2 items are given.
pub fn kendall_tau(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "vectors must align");
    assert!(a.len() >= 2, "need at least two items to correlate");
    let n = a.len();
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let da = a[i] - a[j];
            let db = b[i] - b[j];
            let s = da * db;
            if s > 0.0 {
                concordant += 1;
            } else if s < 0.0 {
                discordant += 1;
            }
        }
    }
    let pairs = (n * (n - 1) / 2) as f64;
    (concordant - discordant) as f64 / pairs
}

/// Convert scores to average ranks (ties share the mean rank).
pub fn average_ranks(xs: &[f64]) -> Vec<f64> {
    let n = xs.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| {
        xs[i]
            .partial_cmp(&xs[j])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && xs[order[j + 1]] == xs[order[i]] {
            j += 1;
        }
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Spearman's ρ: the Pearson correlation of the rank vectors.
///
/// # Panics
/// Panics if the lengths differ or fewer than 2 items are given.
pub fn spearman_rho(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "vectors must align");
    assert!(a.len() >= 2, "need at least two items to correlate");
    let ra = average_ranks(a);
    let rb = average_ranks(b);
    pearson(&ra, &rb)
}

fn pearson(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len() as f64;
    let ma = a.iter().sum::<f64>() / n;
    let mb = b.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (&x, &y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va == 0.0 || vb == 0.0 {
        0.0
    } else {
        cov / (va.sqrt() * vb.sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_orderings_are_tau_one() {
        let a = [1.0, 5.0, 3.0, 9.0];
        assert_eq!(kendall_tau(&a, &a), 1.0);
        assert!((spearman_rho(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reversed_orderings_are_tau_minus_one() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [4.0, 3.0, 2.0, 1.0];
        assert_eq!(kendall_tau(&a, &b), -1.0);
        assert!((spearman_rho(&a, &b) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn one_swap_reduces_tau_predictably() {
        // n=4, one discordant pair out of 6: tau = (5-1)/6.
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 1.0, 3.0, 4.0];
        assert!((kendall_tau(&a, &b) - 4.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn ties_share_average_ranks() {
        let r = average_ranks(&[10.0, 20.0, 20.0, 30.0]);
        assert_eq!(r, vec![1.0, 2.5, 2.5, 4.0]);
    }

    #[test]
    fn constant_vector_has_zero_spearman() {
        let a = [1.0, 1.0, 1.0];
        let b = [1.0, 2.0, 3.0];
        assert_eq!(spearman_rho(&a, &b), 0.0);
    }

    #[test]
    fn spearman_known_value() {
        // Classic example: ranks (1,2,3,4,5) vs (2,1,4,3,5):
        // d^2 sum = 1+1+1+1+0 = 4; rho = 1 - 6*4/(5*24) = 0.8.
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [2.0, 1.0, 4.0, 3.0, 5.0];
        assert!((spearman_rho(&a, &b) - 0.8).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn singleton_panics() {
        let _ = kendall_tau(&[1.0], &[1.0]);
    }
}
