//! Random projection for dimensionality reduction.
//!
//! SimPoint projects basic-block vectors (dimension = number of static basic
//! blocks, often thousands) down to ~15 dimensions with a random matrix
//! before clustering; distances are approximately preserved
//! (Johnson–Lindenstrauss) and k-means becomes cheap.

use crate::rng::SplitMix64;

/// A seeded random projection from `dim_in` to `dim_out`.
#[derive(Debug, Clone)]
pub struct RandomProjection {
    matrix: Vec<f64>, // dim_in x dim_out, row-major
    dim_in: usize,
    dim_out: usize,
}

impl RandomProjection {
    /// Create a projection with entries uniform in `[-1, 1]` (SimPoint's
    /// choice), scaled by `1/sqrt(dim_out)`.
    pub fn new(dim_in: usize, dim_out: usize, seed: u64) -> Self {
        assert!(dim_in > 0 && dim_out > 0, "dimensions must be nonzero");
        let mut rng = SplitMix64::new(seed);
        let scale = 1.0 / (dim_out as f64).sqrt();
        let matrix = (0..dim_in * dim_out)
            .map(|_| (rng.unit_f64() * 2.0 - 1.0) * scale)
            .collect();
        RandomProjection {
            matrix,
            dim_in,
            dim_out,
        }
    }

    /// Project one vector.
    ///
    /// # Panics
    /// Panics if `v.len() != dim_in`.
    pub fn apply(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.dim_in, "input dimension mismatch");
        let mut out = vec![0.0; self.dim_out];
        for (i, &x) in v.iter().enumerate() {
            if x == 0.0 {
                continue; // BBVs are sparse
            }
            let row = &self.matrix[i * self.dim_out..(i + 1) * self.dim_out];
            for (o, &m) in out.iter_mut().zip(row) {
                *o += x * m;
            }
        }
        out
    }

    /// Project a batch of vectors.
    pub fn apply_all(&self, vs: &[Vec<f64>]) -> Vec<Vec<f64>> {
        vs.iter().map(|v| self.apply(v)).collect()
    }

    /// Project a sparse vector given as `(index, value)` pairs — the shape
    /// basic-block vectors naturally have.
    ///
    /// # Panics
    /// Panics if any index is out of range.
    pub fn apply_sparse(&self, v: &[(usize, f64)]) -> Vec<f64> {
        let mut out = vec![0.0; self.dim_out];
        for &(i, x) in v {
            assert!(i < self.dim_in, "sparse index {i} out of range");
            let row = &self.matrix[i * self.dim_out..(i + 1) * self.dim_out];
            for (o, &m) in out.iter_mut().zip(row) {
                *o += x * m;
            }
        }
        out
    }

    /// Output dimensionality.
    pub fn dim_out(&self) -> usize {
        self.dim_out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn projection_is_linear() {
        let p = RandomProjection::new(8, 3, 1);
        let a = vec![1.0, 0.0, 2.0, 0.0, 0.0, 1.0, 0.0, 0.0];
        let b = vec![0.0, 1.0, 0.0, 0.0, 3.0, 0.0, 0.0, 1.0];
        let sum: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        let pa = p.apply(&a);
        let pb = p.apply(&b);
        let ps = p.apply(&sum);
        for i in 0..3 {
            assert!((pa[i] + pb[i] - ps[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn projection_is_deterministic_per_seed() {
        let a = RandomProjection::new(10, 4, 9).apply(&[1.0; 10]);
        let b = RandomProjection::new(10, 4, 9).apply(&[1.0; 10]);
        assert_eq!(a, b);
        let c = RandomProjection::new(10, 4, 10).apply(&[1.0; 10]);
        assert_ne!(a, c);
    }

    #[test]
    fn distances_roughly_preserved_for_well_separated_points() {
        // Two far-apart sparse vectors should stay far apart after
        // projection (JL in expectation; use a generous tolerance).
        let dim = 200;
        let p = RandomProjection::new(dim, 15, 3);
        let mut a = vec![0.0; dim];
        let mut b = vec![0.0; dim];
        a[3] = 100.0;
        b[150] = 100.0;
        let d = crate::dist::euclidean(&p.apply(&a), &p.apply(&b));
        assert!(d > 10.0, "projected distance collapsed to {d}");
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn wrong_input_dimension_panics() {
        RandomProjection::new(4, 2, 0).apply(&[1.0]);
    }
}

#[cfg(test)]
mod sparse_tests {
    use super::*;

    #[test]
    fn sparse_matches_dense() {
        let p = RandomProjection::new(20, 5, 4);
        let mut dense = vec![0.0; 20];
        dense[2] = 3.0;
        dense[17] = -1.5;
        let sparse = vec![(2usize, 3.0), (17usize, -1.5)];
        let a = p.apply(&dense);
        let b = p.apply_sparse(&sparse);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }
}
