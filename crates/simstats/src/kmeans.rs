//! k-means clustering with BIC model selection — the analysis core of
//! SimPoint [Sherwood02]: cluster per-interval basic-block vectors, pick the
//! clustering whose Bayesian Information Criterion score is close to the
//! best, and use the interval nearest each centroid as a simulation point.

use crate::kernel::{argmin, padded_lanes, sq_dist, sq_dists_dim_major, transpose_centroids};
use crate::rng::SplitMix64;

/// The result of one k-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    /// Cluster index per input point.
    pub assignments: Vec<usize>,
    /// Cluster centroids.
    pub centroids: Vec<Vec<f64>>,
    /// Sum of squared distances to assigned centroids.
    pub inertia: f64,
}

impl Clustering {
    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Points per cluster.
    pub fn sizes(&self) -> Vec<usize> {
        let mut s = vec![0usize; self.k()];
        for &a in &self.assignments {
            s[a] += 1;
        }
        s
    }

    /// Index of the point nearest each centroid (the simulation points).
    pub fn representatives(&self, data: &[Vec<f64>]) -> Vec<usize> {
        let mut best = vec![(f64::INFINITY, usize::MAX); self.k()];
        for (i, p) in data.iter().enumerate() {
            let c = self.assignments[i];
            let d = sq_dist(p, &self.centroids[c]);
            if d < best[c].0 {
                best[c] = (d, i);
            }
        }
        best.into_iter().map(|(_, i)| i).collect()
    }

    /// Cluster weights: fraction of points in each cluster.
    pub fn weights(&self) -> Vec<f64> {
        let n = self.assignments.len() as f64;
        self.sizes().iter().map(|&s| s as f64 / n).collect()
    }
}

/// Lloyd's algorithm with random initialization.
///
/// Runs at most `iters` iterations or until assignments stabilize. Empty
/// clusters are re-seeded with the point farthest from its centroid.
///
/// # Panics
/// Panics if `data` is empty or `k == 0`.
pub fn kmeans(data: &[Vec<f64>], k: usize, iters: usize, seed: u64) -> Clustering {
    assert!(!data.is_empty(), "kmeans needs data");
    assert!(k > 0, "kmeans needs k > 0");
    let k = k.min(data.len());
    let mut rng = SplitMix64::new(seed);

    // Random distinct starting points.
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    let mut chosen = std::collections::HashSet::new();
    while centroids.len() < k {
        let i = rng.below(data.len() as u64) as usize;
        if chosen.insert(i) || chosen.len() >= data.len() {
            centroids.push(data[i].clone());
        }
    }

    let mut assignments = vec![0usize; data.len()];
    let lanes = padded_lanes(k);
    let mut dists = vec![0.0; lanes];
    for _ in 0..iters.max(1) {
        // Assign: one squared distance per centroid, computed in parallel
        // lanes over the dimension-major centroid matrix (bit-identical to
        // the per-centroid scalar loop; see `kernel`).
        let cent_t = transpose_centroids(&centroids);
        let mut changed = false;
        for (i, p) in data.iter().enumerate() {
            sq_dists_dim_major(p, &cent_t, lanes, &mut dists);
            let best = argmin(&dists[..k]);
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
        }
        // Update.
        let dim = data[0].len();
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for (p, &a) in data.iter().zip(&assignments) {
            counts[a] += 1;
            for (s, &x) in sums[a].iter_mut().zip(p) {
                *s += x;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed an empty cluster with the worst-fit point.
                let worst = (0..data.len())
                    .max_by(|&a, &b| {
                        sq_dist(&data[a], &centroids[assignments[a]])
                            .partial_cmp(&sq_dist(&data[b], &centroids[assignments[b]]))
                            .unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .expect("data nonempty");
                centroids[c] = data[worst].clone();
            } else {
                for (j, s) in sums[c].iter().enumerate() {
                    centroids[c][j] = s / counts[c] as f64;
                }
            }
        }
        if !changed {
            break;
        }
    }

    let inertia = data
        .iter()
        .zip(&assignments)
        .map(|(p, &a)| sq_dist(p, &centroids[a]))
        .sum();
    Clustering {
        assignments,
        centroids,
        inertia,
    }
}

/// Bayesian Information Criterion of a clustering under the spherical
/// Gaussian model (the X-means / SimPoint formulation). Higher is better.
pub fn bic(data: &[Vec<f64>], c: &Clustering) -> f64 {
    let r = data.len() as f64;
    let d = data[0].len() as f64;
    let k = c.k() as f64;
    let sizes = c.sizes();
    // Pooled variance estimate.
    let denom = (r - k).max(1.0);
    let sigma2 = (c.inertia / (denom * d)).max(1e-12);
    let mut loglik = 0.0;
    for &ri in &sizes {
        if ri == 0 {
            continue;
        }
        let ri = ri as f64;
        loglik += ri * (ri / r).ln();
    }
    loglik -= r * d / 2.0 * (2.0 * std::f64::consts::PI * sigma2).ln();
    loglik -= (r - k) * d / 2.0;
    let params = k * (d + 1.0);
    loglik - params / 2.0 * r.ln()
}

/// SimPoint-style model selection: for each `k` in `1..=max_k`, run k-means
/// with `seeds` random initializations and `iters` iterations each, keep the
/// best (lowest-inertia) run, then return the clustering with the *smallest
/// k* whose BIC is at least `threshold` (typically 0.9) of the way from the
/// worst to the best BIC observed.
///
/// ```
/// use simstats::kmeans::best_clustering;
///
/// // Two obvious groups of 1-D points.
/// let data: Vec<Vec<f64>> = [0.0, 0.1, 0.2, 10.0, 10.1, 10.2]
///     .iter().map(|&x| vec![x]).collect();
/// let c = best_clustering(&data, 4, 3, 50, 0.9);
/// assert_eq!(c.k(), 2);
/// ```
pub fn best_clustering(
    data: &[Vec<f64>],
    max_k: usize,
    seeds: u64,
    iters: usize,
    threshold: f64,
) -> Clustering {
    assert!(!data.is_empty(), "clustering needs data");
    let max_k = max_k.min(data.len()).max(1);
    let mut by_k: Vec<(f64, Clustering)> = Vec::with_capacity(max_k);
    for k in 1..=max_k {
        let mut best: Option<Clustering> = None;
        for s in 0..seeds.max(1) {
            let c = kmeans(data, k, iters, s.wrapping_mul(0x9e37) ^ k as u64);
            if best.as_ref().is_none_or(|b| c.inertia < b.inertia) {
                best = Some(c);
            }
        }
        let c = best.expect("at least one seed");
        by_k.push((bic(data, &c), c));
    }
    let best_bic = by_k
        .iter()
        .map(|(b, _)| *b)
        .fold(f64::NEG_INFINITY, f64::max);
    let worst_bic = by_k.iter().map(|(b, _)| *b).fold(f64::INFINITY, f64::min);
    let cut = worst_bic + threshold * (best_bic - worst_bic);
    for (b, c) in &by_k {
        if *b >= cut {
            return c.clone();
        }
    }
    by_k.pop().expect("nonempty").1
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated blobs in 2D.
    fn blobs() -> Vec<Vec<f64>> {
        let mut rng = SplitMix64::new(42);
        let centers = [(0.0, 0.0), (10.0, 10.0), (-10.0, 10.0)];
        let mut data = Vec::new();
        for &(cx, cy) in &centers {
            for _ in 0..40 {
                data.push(vec![cx + rng.unit_f64() - 0.5, cy + rng.unit_f64() - 0.5]);
            }
        }
        data
    }

    #[test]
    fn kmeans_recovers_separated_blobs() {
        let data = blobs();
        let c = kmeans(&data, 3, 100, 7);
        assert_eq!(c.k(), 3);
        // Each blob of 40 points should map to a single cluster.
        for blob in 0..3 {
            let first = c.assignments[blob * 40];
            for i in 0..40 {
                assert_eq!(c.assignments[blob * 40 + i], first, "blob {blob} split");
            }
        }
        assert!(c.inertia < 100.0, "inertia {} too high", c.inertia);
    }

    #[test]
    fn kmeans_is_deterministic_per_seed() {
        let data = blobs();
        let a = kmeans(&data, 3, 50, 1);
        let b = kmeans(&data, 3, 50, 1);
        assert_eq!(a.assignments, b.assignments);
    }

    #[test]
    fn representatives_are_members_of_their_cluster() {
        let data = blobs();
        let c = kmeans(&data, 3, 100, 3);
        for (cl, &rep) in c.representatives(&data).iter().enumerate() {
            assert_eq!(c.assignments[rep], cl);
        }
    }

    #[test]
    fn weights_sum_to_one() {
        let data = blobs();
        let c = kmeans(&data, 3, 100, 3);
        let w: f64 = c.weights().iter().sum();
        assert!((w - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bic_prefers_true_k_over_underfit() {
        let data = blobs();
        let c1 = kmeans(&data, 1, 100, 5);
        let c3 = kmeans(&data, 3, 100, 5);
        assert!(
            bic(&data, &c3) > bic(&data, &c1),
            "BIC must prefer 3 clusters for 3 blobs"
        );
    }

    #[test]
    fn best_clustering_finds_three_blobs() {
        let data = blobs();
        let c = best_clustering(&data, 10, 5, 100, 0.9);
        assert_eq!(c.k(), 3, "BIC selection should settle on 3 clusters");
    }

    #[test]
    fn k_larger_than_data_is_clamped() {
        let data = vec![vec![0.0], vec![1.0]];
        let c = kmeans(&data, 10, 10, 0);
        assert!(c.k() <= 2);
    }

    #[test]
    fn single_cluster_centroid_is_mean() {
        let data = vec![vec![0.0, 0.0], vec![2.0, 4.0]];
        let c = kmeans(&data, 1, 10, 0);
        assert!((c.centroids[0][0] - 1.0).abs() < 1e-12);
        assert!((c.centroids[0][1] - 2.0).abs() < 1e-12);
    }
}
