//! # simstats
//!
//! The statistical toolkit for the HPCA 2005 simulation-techniques
//! reproduction:
//!
//! - [`pb`] — Plackett–Burman screening designs with foldover (the
//!   processor-bottleneck characterization of §4.1).
//! - [`chi2`] — χ² goodness-of-fit tests with self-contained incomplete
//!   gamma (the execution-profile characterization of §4.2).
//! - [`kmeans`] + [`project`] — k-means with BIC model selection and random
//!   projection (the analysis core of SimPoint).
//! - [`ci`] — confidence intervals and sample-size recommendation (the
//!   statistical core of SMARTS).
//! - [`dist`] — Euclidean/Manhattan distances and normalizations used by
//!   every characterization.
//! - [`histogram`] — the Figure 5 CPI-error histogram.
//! - [`rank`] — Kendall/Spearman rank correlation (the §5.2 coherence
//!   meta-analysis).
//! - [`kernel`] — the shared auto-vectorizable inner loops behind the
//!   modules above, laid out so lane results stay bit-identical to the
//!   scalar accumulation order (reports are byte-compared).
//!
//! ## Example: a PB design recovering a planted bottleneck
//!
//! ```
//! use simstats::pb::{PbDesign, rank_by_magnitude};
//!
//! let design = PbDesign::new(43).with_foldover();
//! // A fake "simulator" whose cycles depend strongly on factor 12.
//! let responses: Vec<f64> = (0..design.num_runs())
//!     .map(|r| if design.level(r, 12) { 200.0 } else { 100.0 })
//!     .collect();
//! let effects = design.effects(&responses);
//! let ranks = rank_by_magnitude(&effects);
//! assert_eq!(ranks[12], 1.0, "factor 12 is the top bottleneck");
//! ```

#![warn(missing_docs)]

pub mod chi2;
pub mod ci;
pub mod dist;
pub mod histogram;
pub mod kernel;
pub mod kmeans;
pub mod pb;
pub mod project;
pub mod rank;
pub mod rng;

pub use chi2::{chi2_compare, Chi2Result};
pub use ci::{estimate, SampleEstimate};
pub use dist::{euclidean, manhattan};
pub use histogram::ErrorHistogram;
pub use kmeans::{best_clustering, kmeans, Clustering};
pub use pb::{lenth, max_rank_distance, rank_by_magnitude, LenthAnalysis, PbDesign};
pub use project::RandomProjection;
pub use rank::{kendall_tau, spearman_rho};
