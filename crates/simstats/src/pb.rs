//! Plackett–Burman experimental designs (Plackett & Burman, 1946), built by
//! the Paley / quadratic-residue construction, with optional foldover.
//!
//! The paper's processor-bottleneck characterization (§4.1, after [Yi03])
//! uses a PB design over 43 parameters: each design row assigns every
//! parameter its low or high value, the simulator measures a response (CPI),
//! and the per-parameter *effect* magnitudes rank the parameters by how much
//! they matter — the machine's performance bottlenecks.

/// A two-level screening design: `rows x factors` entries of ±1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PbDesign {
    rows: Vec<Vec<i8>>,
    factors: usize,
}

/// Is `n` prime? (Trial division; design sizes are tiny.)
fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    let mut d = 2;
    while d * d <= n {
        if n.is_multiple_of(d) {
            return false;
        }
        d += 1;
    }
    true
}

/// Legendre symbol: is `a` a nonzero quadratic residue mod prime `p`?
fn is_qr(a: u64, p: u64) -> bool {
    if a.is_multiple_of(p) {
        return false;
    }
    // a^((p-1)/2) mod p == 1  <=>  residue.
    let mut base = a % p;
    let mut exp = (p - 1) / 2;
    let mut acc: u64 = 1;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = acc * base % p;
        }
        base = base * base % p;
        exp >>= 1;
    }
    acc == 1
}

impl PbDesign {
    /// Build the smallest quadratic-residue PB design with at least
    /// `factors` factors. The design has `p + 1` runs where `p` is the
    /// smallest prime `>= factors` with `p ≡ 3 (mod 4)`; unused columns (if
    /// `p > factors`) are dropped.
    ///
    /// For the paper's 43 parameters this is the classic 44-run design.
    ///
    /// # Panics
    /// Panics if `factors == 0`.
    pub fn new(factors: usize) -> Self {
        assert!(factors > 0, "a design needs at least one factor");
        let mut p = factors as u64;
        while !(is_prime(p) && p % 4 == 3) {
            p += 1;
        }
        let pu = p as usize;
        // Legendre generator: g[0] = +1, g[j] = +1 iff j is a QR mod p.
        let g: Vec<i8> = (0..pu)
            .map(|j| if j == 0 || is_qr(j as u64, p) { 1 } else { -1 })
            .collect();
        // Cyclic shifts + an all-minus row.
        let mut rows = Vec::with_capacity(pu + 1);
        for i in 0..pu {
            let row: Vec<i8> = (0..pu).map(|j| g[(j + pu - i) % pu]).collect();
            rows.push(row[..factors].to_vec());
        }
        rows.push(vec![-1; factors]);
        PbDesign { rows, factors }
    }

    /// Append the sign-flipped mirror of every run (foldover), doubling the
    /// run count and making main effects unconfounded with two-factor
    /// interactions (resolution IV) — the variant [Yi03] recommends.
    pub fn with_foldover(mut self) -> Self {
        let mirrored: Vec<Vec<i8>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(|&v| -v).collect())
            .collect();
        self.rows.extend(mirrored);
        self
    }

    /// Number of runs (simulations) the design requires.
    pub fn num_runs(&self) -> usize {
        self.rows.len()
    }

    /// Number of factors.
    pub fn num_factors(&self) -> usize {
        self.factors
    }

    /// The level of factor `f` in run `r` (`true` = high).
    pub fn level(&self, r: usize, f: usize) -> bool {
        self.rows[r][f] > 0
    }

    /// Run `r` as a boolean level vector.
    pub fn run_levels(&self, r: usize) -> Vec<bool> {
        self.rows[r].iter().map(|&v| v > 0).collect()
    }

    /// Compute each factor's effect from per-run responses:
    /// `effect_f = Σ_r sign(r,f) · y_r / (runs/2)`.
    ///
    /// # Panics
    /// Panics if `responses.len() != num_runs()`.
    pub fn effects(&self, responses: &[f64]) -> Vec<f64> {
        assert_eq!(
            responses.len(),
            self.num_runs(),
            "one response per design run required"
        );
        let half = self.num_runs() as f64 / 2.0;
        // Run-major lane sums: each factor's terms accumulate in run order
        // (bit-identical to the factor-at-a-time loop; see `kernel`), with
        // the inner loop vectorizing across factors.
        let mut sums = crate::kernel::signed_lane_sums(&self.rows, responses, self.factors);
        for s in &mut sums {
            *s /= half;
        }
        sums
    }
}

/// Rank a vector of effects by magnitude: the largest `|effect|` gets rank
/// 1, the next rank 2, and so on (the paper's rank vectors). Ties are broken
/// by factor index for determinism.
pub fn rank_by_magnitude(effects: &[f64]) -> Vec<f64> {
    let mut order: Vec<usize> = (0..effects.len()).collect();
    order.sort_by(|&a, &b| {
        effects[b]
            .abs()
            .partial_cmp(&effects[a].abs())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut ranks = vec![0.0; effects.len()];
    for (rank0, &idx) in order.iter().enumerate() {
        ranks[idx] = (rank0 + 1) as f64;
    }
    ranks
}

/// The maximum possible Euclidean distance between two rank vectors of
/// length `n` (completely out-of-phase permutations, e.g. `<n..1>` vs
/// `<1..n>`), used to normalize Figure 1.
pub fn max_rank_distance(n: usize) -> f64 {
    (1..=n)
        .map(|i| {
            let d = (n as f64 + 1.0) - 2.0 * i as f64;
            d * d
        })
        .sum::<f64>()
        .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn design_44_runs_for_43_factors() {
        let d = PbDesign::new(43);
        assert_eq!(d.num_runs(), 44);
        assert_eq!(d.num_factors(), 43);
    }

    #[test]
    fn columns_are_balanced() {
        for factors in [7, 11, 19, 23, 43] {
            let d = PbDesign::new(factors);
            for f in 0..d.num_factors() {
                let highs = (0..d.num_runs()).filter(|&r| d.level(r, f)).count();
                assert_eq!(
                    highs,
                    d.num_runs() / 2,
                    "factor {f} of a {}-run design unbalanced",
                    d.num_runs()
                );
            }
        }
    }

    #[test]
    fn columns_are_pairwise_orthogonal() {
        let d = PbDesign::new(43);
        for a in 0..d.num_factors() {
            for b in (a + 1)..d.num_factors() {
                let dot: i32 = (0..d.num_runs())
                    .map(|r| {
                        let x = if d.level(r, a) { 1 } else { -1 };
                        let y = if d.level(r, b) { 1 } else { -1 };
                        x * y
                    })
                    .sum();
                assert_eq!(dot, 0, "columns {a},{b} not orthogonal");
            }
        }
    }

    #[test]
    fn foldover_doubles_runs_and_mirrors() {
        let d = PbDesign::new(11).with_foldover();
        assert_eq!(d.num_runs(), 24);
        let n = d.num_runs() / 2;
        for r in 0..n {
            for f in 0..d.num_factors() {
                assert_eq!(d.level(r, f), !d.level(r + n, f));
            }
        }
    }

    #[test]
    fn effects_recover_a_planted_linear_model() {
        // Response = 10*x3 - 4*x7 + noiseless baseline: PB effects should
        // recover the coefficients (x = ±1 coding => effect = 2*coef).
        let d = PbDesign::new(19).with_foldover();
        let responses: Vec<f64> = (0..d.num_runs())
            .map(|r| {
                let x3 = if d.level(r, 3) { 1.0 } else { -1.0 };
                let x7 = if d.level(r, 7) { 1.0 } else { -1.0 };
                100.0 + 10.0 * x3 - 4.0 * x7
            })
            .collect();
        let eff = d.effects(&responses);
        assert!((eff[3] - 20.0).abs() < 1e-9, "effect[3] = {}", eff[3]);
        assert!((eff[7] + 8.0).abs() < 1e-9, "effect[7] = {}", eff[7]);
        for (i, &e) in eff.iter().enumerate() {
            if i != 3 && i != 7 {
                assert!(e.abs() < 1e-9, "effect[{i}] = {e} should be zero");
            }
        }
    }

    #[test]
    fn ranks_order_by_magnitude() {
        let ranks = rank_by_magnitude(&[0.5, -10.0, 3.0, 0.0]);
        assert_eq!(ranks, vec![3.0, 1.0, 2.0, 4.0]);
    }

    #[test]
    fn rank_ties_break_deterministically() {
        let ranks = rank_by_magnitude(&[1.0, -1.0, 1.0]);
        assert_eq!(ranks, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn max_rank_distance_matches_brute_force() {
        let n = 43;
        let a: Vec<f64> = (1..=n).map(|i| i as f64).collect();
        let b: Vec<f64> = (1..=n).rev().map(|i| i as f64).collect();
        let brute: f64 = a
            .iter()
            .zip(&b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt();
        assert!((max_rank_distance(n) - brute).abs() < 1e-9);
    }

    #[test]
    fn small_factor_counts_round_up_to_valid_designs() {
        // factors=4 -> p=7 -> 8 runs.
        let d = PbDesign::new(4);
        assert_eq!(d.num_runs(), 8);
        assert_eq!(d.num_factors(), 4);
    }

    #[test]
    fn prime_helper_is_correct() {
        assert!(is_prime(43));
        assert!(!is_prime(42));
        assert!(is_prime(2));
        assert!(!is_prime(1));
    }

    #[test]
    fn qr_helper_matches_known_residues_mod_11() {
        let qrs: Vec<u64> = (1..11).filter(|&a| is_qr(a, 11)).collect();
        assert_eq!(qrs, vec![1, 3, 4, 5, 9]);
    }
}

/// Lenth's method for screening designs: estimate the pseudo standard error
/// (PSE) of the effects and flag which effects are statistically
/// significant at the given multiplier (Lenth recommends ~2.0-2.3 for the
/// margin of error at alpha ≈ 0.05).
///
/// This answers "how many of a workload's 43 PB ranks actually matter" —
/// the question behind the paper's Figure 2 prefix analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct LenthAnalysis {
    /// The pseudo standard error of the effects.
    pub pse: f64,
    /// Margin of error (`multiplier * pse`).
    pub margin: f64,
    /// Which effects exceed the margin.
    pub significant: Vec<bool>,
}

/// Run Lenth's analysis on a vector of effects.
///
/// `s0 = 1.5 x median |effect|`; PSE = `1.5 x median { |effect| : |effect| <
/// 2.5 s0 }`; an effect is significant when `|effect| > multiplier x PSE`.
///
/// # Panics
/// Panics if `effects` is empty.
pub fn lenth(effects: &[f64], multiplier: f64) -> LenthAnalysis {
    assert!(!effects.is_empty(), "Lenth's method needs effects");
    fn median(xs: &mut [f64]) -> f64 {
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let n = xs.len();
        if n % 2 == 1 {
            xs[n / 2]
        } else {
            (xs[n / 2 - 1] + xs[n / 2]) / 2.0
        }
    }
    let mut mags: Vec<f64> = effects.iter().map(|e| e.abs()).collect();
    let s0 = 1.5 * median(&mut mags);
    let mut trimmed: Vec<f64> = mags.iter().copied().filter(|&m| m < 2.5 * s0).collect();
    let pse = if trimmed.is_empty() {
        s0
    } else {
        1.5 * median(&mut trimmed)
    };
    let margin = multiplier * pse;
    LenthAnalysis {
        pse,
        margin,
        significant: effects.iter().map(|e| e.abs() > margin).collect(),
    }
}

#[cfg(test)]
mod lenth_tests {
    use super::*;

    #[test]
    fn planted_effects_are_flagged() {
        // 40 tiny noise effects + 3 huge ones.
        let mut effects: Vec<f64> = (0..40).map(|i| 0.01 * ((i % 7) as f64 - 3.0)).collect();
        effects.push(5.0);
        effects.push(-4.0);
        effects.push(3.0);
        let a = lenth(&effects, 2.0);
        let n_sig = a.significant.iter().filter(|&&s| s).count();
        assert_eq!(n_sig, 3, "exactly the planted effects are significant");
        assert!(a.significant[40] && a.significant[41] && a.significant[42]);
        assert!(a.pse < 0.1, "PSE tracks the noise floor, got {}", a.pse);
    }

    #[test]
    fn pure_noise_has_few_significant_effects() {
        let effects: Vec<f64> = (0..43)
            .map(|i| ((i * 37 % 11) as f64 - 5.0) * 0.01)
            .collect();
        let a = lenth(&effects, 2.3);
        let n_sig = a.significant.iter().filter(|&&s| s).count();
        assert!(n_sig <= 4, "noise flagged {n_sig} significant effects");
    }

    #[test]
    fn all_equal_effects_have_zero_excess() {
        let a = lenth(&[1.0; 10], 2.0);
        assert!(
            !a.significant.iter().any(|&s| s),
            "uniform effects are the floor"
        );
    }
}
