//! Descriptive statistics and the confidence-interval machinery behind
//! SMARTS [Wunderlich03]: estimate CPI from a systematic sample, compute the
//! relative confidence-interval half-width, and recommend a sample size when
//! the achieved confidence misses the target.

/// Arithmetic mean. Returns 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation (n−1 denominator). Returns 0 for n < 2.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64;
    var.sqrt()
}

/// Coefficient of variation `s / x̄`; 0 when the mean is 0.
pub fn coeff_of_variation(xs: &[f64]) -> f64 {
    let m = mean(xs);
    if m == 0.0 {
        0.0
    } else {
        std_dev(xs) / m
    }
}

/// A sampled estimate with its confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SampleEstimate {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Number of samples.
    pub n: usize,
    /// Half-width of the confidence interval at the chosen z.
    pub half_width: f64,
    /// Relative half-width (`half_width / mean`).
    pub relative_error: f64,
}

/// Estimate a mean from samples at confidence multiplier `z`
/// (z = 3 → the paper's 99.7% confidence level).
///
/// ```
/// use simstats::ci::estimate;
///
/// let cpis = vec![1.0, 1.1, 0.9, 1.05, 0.95];
/// let e = estimate(&cpis, 3.0);
/// assert!((e.mean - 1.0).abs() < 0.01);
/// if !e.meets(0.03) {
///     let n = e.recommended_n(3.0, 0.03); // SMARTS's rerun recommendation
///     assert!(n > cpis.len());
/// }
/// ```
pub fn estimate(xs: &[f64], z: f64) -> SampleEstimate {
    let m = mean(xs);
    let s = std_dev(xs);
    let n = xs.len();
    let half = if n > 0 {
        z * s / (n as f64).sqrt()
    } else {
        f64::INFINITY
    };
    SampleEstimate {
        mean: m,
        std_dev: s,
        n,
        half_width: half,
        relative_error: if m != 0.0 { half / m } else { f64::INFINITY },
    }
}

impl SampleEstimate {
    /// Does the estimate meet a relative-error target (e.g. ±3%)?
    pub fn meets(&self, target_relative: f64) -> bool {
        self.relative_error <= target_relative
    }

    /// Sample size needed to reach `target_relative` at multiplier `z`:
    /// `n = (z · CV / ε)²` — SMARTS's recommended-n formula.
    pub fn recommended_n(&self, z: f64, target_relative: f64) -> usize {
        if self.mean == 0.0 || self.std_dev == 0.0 {
            return self.n.max(1);
        }
        let cv = self.std_dev / self.mean;
        ((z * cv / target_relative).powi(2)).ceil() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std_basics() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        // Sample std dev with n-1: sqrt(32/7).
        assert!((std_dev(&xs) - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton_edge_cases() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[]), 0.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
    }

    #[test]
    fn estimate_tightens_with_more_samples() {
        let few: Vec<f64> = (0..10).map(|i| 1.0 + 0.1 * (i % 3) as f64).collect();
        let many: Vec<f64> = (0..1000).map(|i| 1.0 + 0.1 * (i % 3) as f64).collect();
        let a = estimate(&few, 3.0);
        let b = estimate(&many, 3.0);
        assert!(b.relative_error < a.relative_error);
    }

    #[test]
    fn zero_variance_meets_any_target() {
        let e = estimate(&[2.0; 50], 3.0);
        assert!(e.meets(0.0001));
        assert_eq!(e.half_width, 0.0);
    }

    #[test]
    fn recommended_n_matches_formula() {
        // CV = 0.5, z = 3, eps = 0.03 -> n = (3*0.5/0.03)^2 = 2500.
        let e = SampleEstimate {
            mean: 2.0,
            std_dev: 1.0,
            n: 10,
            half_width: 1.0,
            relative_error: 0.5,
        };
        assert_eq!(e.recommended_n(3.0, 0.03), 2500);
    }

    #[test]
    fn coeff_of_variation_scale_invariant() {
        let a: Vec<f64> = vec![1.0, 2.0, 3.0];
        let b: Vec<f64> = a.iter().map(|x| x * 100.0).collect();
        assert!((coeff_of_variation(&a) - coeff_of_variation(&b)).abs() < 1e-12);
    }
}
