//! Vector distances and normalization used by the characterizations.

use crate::kernel::sq_dist;

/// Euclidean (L2) distance between two equal-length vectors, built on the
/// shared [`crate::kernel::sq_dist`] accumulation so its term order matches
/// the k-means kernels exactly.
///
/// # Panics
/// Panics if the lengths differ.
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "vectors must have equal length");
    sq_dist(a, b).sqrt()
}

/// Manhattan (L1) distance between two equal-length vectors — used by the
/// paper's speed-versus-accuracy analysis ("we used the Manhattan distance
/// … since it more clearly presented the results").
///
/// # Panics
/// Panics if the lengths differ.
pub fn manhattan(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "vectors must have equal length");
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// Normalize `v` element-wise by `reference` (metric ratios), mapping a
/// perfect match to the all-ones vector. Zero reference entries map to 1.0
/// when the value is also zero and to `f64::INFINITY` otherwise.
pub fn normalize_by(v: &[f64], reference: &[f64]) -> Vec<f64> {
    assert_eq!(v.len(), reference.len(), "vectors must have equal length");
    v.iter()
        .zip(reference)
        .map(|(&x, &r)| {
            if r == 0.0 {
                if x == 0.0 {
                    1.0
                } else {
                    f64::INFINITY
                }
            } else {
                x / r
            }
        })
        .collect()
}

/// Relative (signed) error `(x - reference) / reference`, in percent.
pub fn percent_error(x: f64, reference: f64) -> f64 {
    if reference == 0.0 {
        if x == 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        (x - reference) / reference * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_basics() {
        assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
        assert_eq!(euclidean(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    fn manhattan_basics() {
        assert_eq!(manhattan(&[0.0, 0.0], &[3.0, 4.0]), 7.0);
        assert_eq!(manhattan(&[-1.0], &[1.0]), 2.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        let _ = euclidean(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn normalize_by_reference() {
        let v = normalize_by(&[2.0, 0.5, 0.0], &[4.0, 0.5, 0.0]);
        assert_eq!(v, vec![0.5, 1.0, 1.0]);
    }

    #[test]
    fn normalize_by_zero_reference_with_nonzero_value() {
        let v = normalize_by(&[1.0], &[0.0]);
        assert!(v[0].is_infinite());
    }

    #[test]
    fn percent_error_signed() {
        assert_eq!(percent_error(1.1, 1.0), 10.000000000000009);
        assert!(percent_error(0.9, 1.0) < 0.0);
        assert_eq!(percent_error(0.0, 0.0), 0.0);
    }
}
