//! End-to-end checks of the `simstore` maintenance binary against a real
//! store directory.

use std::path::PathBuf;
use std::process::Command;
use std::sync::Arc;

use sim_store::{Key, Store};

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("simstore-cli-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn populated(name: &str) -> (PathBuf, Arc<Store>) {
    let dir = scratch(name);
    let store = Arc::new(Store::open(&dir).expect("store opens"));
    for i in 0u64..8 {
        store.put(
            "run/v1",
            Key::of(&i.to_le_bytes()),
            format!("payload-{i}").into_bytes(),
        );
    }
    store.flush().unwrap();
    (dir, store)
}

fn simstore(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_simstore"))
        .args(args)
        .env_remove("SIM_STORE")
        .output()
        .expect("simstore spawns")
}

#[test]
fn ls_stat_verify_gc_roundtrip() {
    let (dir, store) = populated("roundtrip");
    let dir_s = dir.to_str().unwrap();

    let ls = simstore(&["ls", "--dir", dir_s]);
    assert!(ls.status.success());
    let listing = String::from_utf8_lossy(&ls.stdout).into_owned();
    assert_eq!(listing.lines().count(), 8, "one line per entry:\n{listing}");
    assert!(listing.contains("run/v1"));

    let stat = simstore(&["stat", "--dir", dir_s, "--json"]);
    assert!(stat.status.success());
    let json = String::from_utf8_lossy(&stat.stdout).into_owned();
    assert!(json.contains("\"entries\":8"), "stat --json: {json}");
    assert!(json.contains("\"run/v1\""), "per-namespace stats: {json}");

    let verify = simstore(&["verify", "--dir", dir_s]);
    assert!(verify.status.success(), "fresh store verifies clean");
    assert!(String::from_utf8_lossy(&verify.stdout).contains("0 problems"));

    // GC down to a budget that keeps only some entries, then re-verify.
    let gc = simstore(&["gc", "--dir", dir_s, "--max-bytes", "200"]);
    assert!(
        gc.status.success(),
        "{}",
        String::from_utf8_lossy(&gc.stderr)
    );
    store.refresh().unwrap();
    let remaining = store.stat().unwrap().entries;
    assert!(
        (1..8).contains(&remaining),
        "budget evicted some but not all entries, kept {remaining}"
    );
    let verify = simstore(&["verify", "--dir", dir_s]);
    assert!(verify.status.success(), "compacted store verifies clean");
}

#[test]
fn verify_exits_nonzero_on_damage() {
    let (dir, _store) = populated("damage");
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "seg") {
            let mut bytes = std::fs::read(&path).unwrap();
            let at = bytes.len() - 1;
            bytes[at] ^= 0xff;
            std::fs::write(&path, bytes).unwrap();
        }
    }
    let verify = simstore(&["verify", "--dir", dir.to_str().unwrap()]);
    assert!(!verify.status.success(), "damage must fail verification");
}

#[test]
fn missing_dir_and_bad_usage_fail_cleanly() {
    let out = simstore(&["ls"]);
    assert!(!out.status.success(), "no --dir and no SIM_STORE");
    let out = simstore(&["frobnicate", "--dir", "/tmp"]);
    assert!(!out.status.success(), "unknown command");
    let out = simstore(&["gc", "--dir", "/tmp"]);
    assert!(!out.status.success(), "gc without --max-bytes");
}
