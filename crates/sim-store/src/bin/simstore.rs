//! `simstore` — inspect and maintain a sim-store artifact directory.
//!
//! ```text
//! simstore ls     [--dir DIR]                list live entries
//! simstore stat   [--dir DIR] [--json]       aggregate statistics
//! simstore verify [--dir DIR]                full-scan CRC/format check
//! simstore gc     [--dir DIR] --max-bytes N  compact to a byte budget
//! ```
//!
//! `--dir` defaults to the `SIM_STORE` environment variable. `verify` exits
//! nonzero when problems are found, so CI can gate on store integrity.

use std::path::PathBuf;
use std::process::ExitCode;

use sim_store::Store;

const USAGE: &str = "usage: simstore <ls|stat|verify|gc> [--dir DIR] [--max-bytes N] [--json]
  --dir DIR      store directory (default: $SIM_STORE)
  --max-bytes N  gc: byte budget for surviving records (accepts k/m/g suffix)
  --json         stat: machine-readable output";

struct Args {
    cmd: String,
    dir: Option<PathBuf>,
    max_bytes: Option<u64>,
    json: bool,
}

fn parse_size(s: &str) -> Option<u64> {
    let s = s.trim().to_ascii_lowercase();
    let (num, mult) = match s.strip_suffix(['k', 'm', 'g']) {
        Some(n) => (
            n,
            match s.as_bytes()[s.len() - 1] {
                b'k' => 1u64 << 10,
                b'm' => 1 << 20,
                _ => 1 << 30,
            },
        ),
        None => (s.as_str(), 1),
    };
    num.parse::<u64>().ok().map(|v| v * mult)
}

fn parse_args(mut argv: std::env::Args) -> Result<Args, String> {
    let _ = argv.next(); // program name
    let cmd = argv.next().ok_or_else(|| USAGE.to_string())?;
    let mut args = Args {
        cmd,
        dir: None,
        max_bytes: None,
        json: false,
    };
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--dir" => {
                let v = argv.next().ok_or("--dir needs a value")?;
                args.dir = Some(PathBuf::from(v));
            }
            "--max-bytes" => {
                let v = argv.next().ok_or("--max-bytes needs a value")?;
                args.max_bytes = Some(parse_size(&v).ok_or(format!("bad size {v:?}"))?);
            }
            "--json" => args.json = true,
            other => return Err(format!("unknown argument {other:?}\n{USAGE}")),
        }
    }
    Ok(args)
}

fn run(args: Args) -> Result<ExitCode, String> {
    let dir = args
        .dir
        .or_else(|| sim_obs::env_val("SIM_STORE"))
        .ok_or("no store directory: pass --dir or set SIM_STORE")?;
    let store = Store::open(&dir).map_err(|e| format!("open {}: {e}", dir.display()))?;
    match args.cmd.as_str() {
        "ls" => {
            for e in store.entries() {
                println!(
                    "{}  {:>10}  stamp {:>6}  {}{}",
                    e.key.hex(),
                    e.len,
                    e.stamp,
                    e.ns,
                    if e.pending { "  (pending)" } else { "" }
                );
            }
            Ok(ExitCode::SUCCESS)
        }
        "stat" => {
            let st = store.stat().map_err(|e| e.to_string())?;
            if args.json {
                let ns: Vec<String> = st
                    .by_ns
                    .iter()
                    .map(|(ns, (n, b))| format!("{ns:?}:{{\"entries\":{n},\"payload_bytes\":{b}}}"))
                    .collect();
                println!(
                    "{{\"dir\":{:?},\"segments\":{},\"disk_bytes\":{},\"entries\":{},\"by_ns\":{{{}}}}}",
                    dir.display().to_string(),
                    st.segments,
                    st.disk_bytes,
                    st.entries,
                    ns.join(",")
                );
            } else {
                println!("store        {}", dir.display());
                println!("segments     {}", st.segments);
                println!("disk bytes   {}", st.disk_bytes);
                println!("entries      {}", st.entries);
                for (ns, (n, b)) in &st.by_ns {
                    println!("  {ns:<12} {n:>6} entries  {b:>10} payload bytes");
                }
            }
            Ok(ExitCode::SUCCESS)
        }
        "verify" => {
            let report = store.verify().map_err(|e| e.to_string())?;
            println!(
                "verified {} segments, {} records ok, {} problems",
                report.segments,
                report.records_ok,
                report.problems.len()
            );
            for p in &report.problems {
                println!("  {p}");
            }
            Ok(if report.clean() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            })
        }
        "gc" => {
            let budget = args.max_bytes.ok_or("gc needs --max-bytes")?;
            let stats = store.gc(budget).map_err(|e| e.to_string())?;
            println!(
                "gc: kept {} evicted {} dropped-corrupt {} disk-bytes {}",
                stats.kept, stats.evicted, stats.dropped_corrupt, stats.disk_bytes
            );
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    }
}

fn main() -> ExitCode {
    match parse_args(std::env::args()).and_then(run) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("simstore: {msg}");
            ExitCode::FAILURE
        }
    }
}
