//! # sim-store
//!
//! A persistent, content-addressed artifact store for simulation results
//! and checkpoints.
//!
//! The in-memory run cache and checkpoint library (the `techniques` crate)
//! die with the process; every new sweep re-pays fast-forward and detailed
//! simulation the previous invocation already performed. This crate keeps
//! those artifacts on disk — run results keyed by their run fingerprint and
//! checkpoint tiers keyed by `(program, config, position)` — so a second
//! process (or a CI re-run) starts warm.
//!
//! ## On-disk format (version 1)
//!
//! A store is a directory of append-only *segment* files plus a transient
//! `.lock` file. Each segment is:
//!
//! ```text
//! magic  b"SST1"            4 bytes
//! format version            u32 LE
//! record*                   until EOF
//! ```
//!
//! and each record is:
//!
//! ```text
//! ns_len                    u16 LE
//! ns                        ns_len bytes (UTF-8 namespace, e.g. "run/v1")
//! key hi, key lo            2 x u64 LE  (128-bit content key)
//! stamp                     u64 LE      (logical write stamp; newest wins)
//! payload_len               u32 LE
//! crc32                     u32 LE      (IEEE, over ns ++ key ++ stamp ++ payload)
//! payload                   payload_len bytes
//! ```
//!
//! Guarantees and non-guarantees:
//!
//! - **Nothing is trusted.** Every read re-checks the CRC against the bytes
//!   on disk; a failed check reports the entry corrupt and behaves as a
//!   miss. Segments with a wrong magic or format version are skipped
//!   wholesale — a store written by a future format is *foreign*, never
//!   misread. Payload envelopes carry their own program/config fingerprints
//!   (enforced by the caller) so a key collision can't smuggle in state for
//!   a different machine.
//! - **Crash safety.** Writers accumulate records in memory and flush them
//!   as one new segment written to a temporary file, fsynced, then
//!   atomically renamed. A crash leaves either the whole segment or no
//!   segment; a torn tail in a segment (from an unclean copy) truncates
//!   indexing at the damage, never corrupts earlier records.
//! - **Concurrency.** Each flush creates a uniquely named segment, so
//!   concurrent writer processes never collide; mutation of *existing*
//!   files (GC compaction) happens under the `.lock` file. Last writer wins
//!   per key, ordered by stamp.
//!
//! A hit is only an artifact transfer: callers are expected to charge the
//! full modeled cost of the work the artifact represents.

#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use sim_obs::metrics::Counter;

/// Magic bytes opening every segment file.
pub const MAGIC: [u8; 4] = *b"SST1";

/// On-disk format version. Bump on any incompatible layout change; readers
/// skip segments from other versions entirely.
pub const FORMAT_VERSION: u32 = 1;

const SEGMENT_HEADER_LEN: u64 = 8;
const LOCK_STALE_AFTER: Duration = Duration::from_secs(30);

/// A 128-bit content key derived from canonical key bytes.
///
/// Two independent FNV-1a streams (different offset bases) make accidental
/// collisions across the artifact population negligible, and the derivation
/// is byte-stable across platforms and Rust versions — unlike
/// `DefaultHasher`, whose output may change between releases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Key {
    /// High 64 bits.
    pub hi: u64,
    /// Low 64 bits.
    pub lo: u64,
}

impl Key {
    /// Derive the key for `bytes`.
    pub fn of(bytes: &[u8]) -> Key {
        Key {
            hi: fnv1a(bytes, 0xcbf2_9ce4_8422_2325),
            lo: fnv1a(bytes, 0x8422_2325_cbf2_9ce4),
        }
    }

    /// 32-hex-digit rendering (used by `simstore ls`).
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }
}

fn fnv1a(bytes: &[u8], basis: u64) -> u64 {
    let mut h = basis;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// IEEE CRC32 lookup table, built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xedb8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// IEEE CRC32 over a sequence of byte slices (as if concatenated).
pub fn crc32(parts: &[&[u8]]) -> u32 {
    let mut c = !0u32;
    for part in parts {
        for &b in *part {
            c = CRC_TABLE[((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
        }
    }
    !c
}

fn record_crc(ns: &str, key: Key, stamp: u64, payload: &[u8]) -> u32 {
    crc32(&[
        ns.as_bytes(),
        &key.hi.to_le_bytes(),
        &key.lo.to_le_bytes(),
        &stamp.to_le_bytes(),
        payload,
    ])
}

fn record_len(ns: &str, payload_len: usize) -> u64 {
    // ns_len + ns + key + stamp + payload_len + crc + payload
    2 + ns.len() as u64 + 16 + 8 + 4 + 4 + payload_len as u64
}

/// Where an indexed record lives on disk.
#[derive(Debug, Clone)]
struct Slot {
    seg: PathBuf,
    /// Offset of the payload within the segment.
    payload_at: u64,
    payload_len: u32,
    stamp: u64,
    crc: u32,
}

#[derive(Debug, Clone)]
struct Pending {
    stamp: u64,
    payload: Vec<u8>,
}

#[derive(Debug, Default)]
struct Inner {
    index: HashMap<(String, Key), Slot>,
    pending: HashMap<(String, Key), Pending>,
}

/// One live entry, as reported by [`Store::entries`] (`simstore ls`).
#[derive(Debug, Clone)]
pub struct EntryInfo {
    /// Namespace (e.g. `run/v1`).
    pub ns: String,
    /// Content key.
    pub key: Key,
    /// Payload length in bytes.
    pub len: u64,
    /// Logical write stamp.
    pub stamp: u64,
    /// `true` while the entry is only buffered in memory (not yet flushed).
    pub pending: bool,
}

/// Aggregate store statistics ([`Store::stat`], `simstore stat`).
#[derive(Debug, Clone, Default)]
pub struct StoreStat {
    /// Number of segment files.
    pub segments: u64,
    /// Total bytes across segment files.
    pub disk_bytes: u64,
    /// Live (deduplicated) entries.
    pub entries: u64,
    /// Per-namespace `(entries, payload_bytes)`.
    pub by_ns: BTreeMap<String, (u64, u64)>,
}

/// Result of a [`Store::verify`] scan.
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// Segments scanned (including skipped foreign ones).
    pub segments: u64,
    /// Records whose CRC checked out.
    pub records_ok: u64,
    /// Human-readable descriptions of every problem found.
    pub problems: Vec<String>,
}

impl VerifyReport {
    /// `true` when no problems were found.
    pub fn clean(&self) -> bool {
        self.problems.is_empty()
    }
}

/// Result of a [`Store::gc`] pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct GcStats {
    /// Entries kept (newest first within the byte budget).
    pub kept: u64,
    /// Entries evicted.
    pub evicted: u64,
    /// Corrupt records dropped during compaction.
    pub dropped_corrupt: u64,
    /// Disk bytes after compaction.
    pub disk_bytes: u64,
}

/// A disk-backed content-addressed artifact store. See the crate docs for
/// the format and guarantees.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    inner: Mutex<Inner>,
    next_stamp: AtomicU64,
    flush_seq: AtomicU64,
    hits: Counter,
    misses: Counter,
    writes: Counter,
    evicts: Counter,
    corrupts: Counter,
}

impl Store {
    /// Open (creating if needed) the store at `dir` with private, unreported
    /// counters. Scans existing segments to build the in-memory index.
    pub fn open(dir: &Path) -> io::Result<Store> {
        Store::open_with(
            dir,
            [
                Counter::detached(),
                Counter::detached(),
                Counter::detached(),
                Counter::detached(),
                Counter::detached(),
            ],
        )
    }

    /// Open the store with its counters registered in the process-wide
    /// metrics registry as `store.{hit,miss,write,evict,corrupt}` — the
    /// variant used by experiment binaries, so store traffic shows up in
    /// `--metrics` reports.
    pub fn registered(dir: &Path) -> io::Result<Store> {
        Store::open_with(
            dir,
            [
                sim_obs::metrics::counter("store.hit"),
                sim_obs::metrics::counter("store.miss"),
                sim_obs::metrics::counter("store.write"),
                sim_obs::metrics::counter("store.evict"),
                sim_obs::metrics::counter("store.corrupt"),
            ],
        )
    }

    fn open_with(dir: &Path, counters: [Counter; 5]) -> io::Result<Store> {
        fs::create_dir_all(dir)?;
        let [hits, misses, writes, evicts, corrupts] = counters;
        let store = Store {
            dir: dir.to_path_buf(),
            inner: Mutex::new(Inner::default()),
            next_stamp: AtomicU64::new(1),
            flush_seq: AtomicU64::new(0),
            hits,
            misses,
            writes,
            evicts,
            corrupts,
        };
        store.refresh()?;
        Ok(store)
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Reset the traffic counters to zero without touching stored artifacts
    /// (per-sweep reporting; the store itself persists across sweeps by
    /// design).
    pub fn reset_counters(&self) {
        self.hits.reset();
        self.misses.reset();
        self.writes.reset();
        self.evicts.reset();
        self.corrupts.reset();
    }

    /// `(hits, misses, writes, evicts, corrupts)` since open or the last
    /// [`Store::reset_counters`].
    pub fn counters(&self) -> (u64, u64, u64, u64, u64) {
        (
            self.hits.get(),
            self.misses.get(),
            self.writes.get(),
            self.evicts.get(),
            self.corrupts.get(),
        )
    }

    /// Rebuild the index from the segment files on disk, keeping any
    /// unflushed pending writes. Picks up segments written by other
    /// processes since open.
    pub fn refresh(&self) -> io::Result<()> {
        let mut index = HashMap::new();
        let mut max_stamp = 0u64;
        for seg in self.segment_paths()? {
            // Unreadable or foreign segments are skipped, not fatal: the
            // store must degrade to cold-run behavior, never block a sweep.
            let Ok(bytes) = fs::read(&seg) else { continue };
            scan_segment(&bytes, |rec| {
                max_stamp = max_stamp.max(rec.stamp);
                let slot = Slot {
                    seg: seg.clone(),
                    payload_at: rec.payload_at,
                    payload_len: rec.payload_len,
                    stamp: rec.stamp,
                    crc: rec.crc,
                };
                match index.entry((rec.ns.to_string(), rec.key)) {
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(slot);
                    }
                    std::collections::hash_map::Entry::Occupied(mut e) => {
                        if rec.stamp >= e.get().stamp {
                            e.insert(slot);
                        }
                    }
                }
            });
        }
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        for p in inner.pending.values() {
            max_stamp = max_stamp.max(p.stamp);
        }
        inner.index = index;
        self.next_stamp.fetch_max(max_stamp + 1, Ordering::Relaxed);
        Ok(())
    }

    /// Fetch the payload stored under `(ns, key)`, verifying its CRC against
    /// the bytes on disk. A corrupt or truncated record is counted, dropped
    /// from the index, and reported as a miss — callers fall back to
    /// recomputing, so damage can never change results.
    pub fn get(&self, ns: &str, key: Key) -> Option<Vec<u8>> {
        let slot = {
            let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(p) = inner.pending.get(&(ns.to_string(), key)) {
                self.hits.inc();
                return Some(p.payload.clone());
            }
            inner.index.get(&(ns.to_string(), key)).cloned()
        };
        let Some(slot) = slot else {
            self.misses.inc();
            return None;
        };
        match read_payload(&slot) {
            Some(payload) if record_crc(ns, key, slot.stamp, &payload) == slot.crc => {
                self.hits.inc();
                Some(payload)
            }
            _ => {
                self.corrupts.inc();
                self.misses.inc();
                let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
                inner.index.remove(&(ns.to_string(), key));
                None
            }
        }
    }

    /// Buffer `payload` for storage under `(ns, key)`. Durable only after
    /// [`Store::flush`] (experiment harnesses flush at exit).
    pub fn put(&self, ns: &str, key: Key, payload: Vec<u8>) {
        let stamp = self.next_stamp.fetch_add(1, Ordering::Relaxed);
        self.writes.inc();
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner
            .pending
            .insert((ns.to_string(), key), Pending { stamp, payload });
    }

    /// Pending (unflushed) record count.
    pub fn pending_len(&self) -> usize {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.pending.len()
    }

    /// Write all pending records as one new segment: temp file, fsync,
    /// atomic rename. On success the records become visible to other
    /// processes; on failure the records stay pending and the store on disk
    /// is untouched.
    pub fn flush(&self) -> io::Result<()> {
        let pending: Vec<((String, Key), Pending)> = {
            let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            if inner.pending.is_empty() {
                return Ok(());
            }
            let mut v: Vec<_> = inner
                .pending
                .iter()
                .map(|(k, p)| (k.clone(), p.clone()))
                .collect();
            // Deterministic record order within a segment.
            v.sort_by(|a, b| a.0.cmp(&b.0));
            v
        };

        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        let mut slots = Vec::with_capacity(pending.len());
        for ((ns, key), p) in &pending {
            let payload_at = buf.len() as u64 + record_len(ns, 0);
            append_record(&mut buf, ns, *key, p.stamp, &p.payload);
            slots.push((
                (ns.clone(), *key),
                Slot {
                    seg: PathBuf::new(), // patched below once the name is final
                    payload_at,
                    payload_len: p.payload.len() as u32,
                    stamp: p.stamp,
                    crc: record_crc(ns, *key, p.stamp, &p.payload),
                },
            ));
        }

        let seq = self.flush_seq.fetch_add(1, Ordering::Relaxed);
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos())
            .unwrap_or(0);
        let base = format!("seg-{nanos:x}-{}-{seq}", std::process::id());
        let tmp = self.dir.join(format!("{base}.tmp"));
        let seg = self.dir.join(format!("{base}.seg"));
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&buf)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &seg)?;

        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        for (k, mut slot) in slots {
            slot.seg.clone_from(&seg);
            // A concurrent put between snapshot and now keeps its pending
            // copy (newer stamp) and will be flushed next time.
            if inner.pending.get(&k).map(|p| p.stamp) == Some(slot.stamp) {
                inner.pending.remove(&k);
            }
            match inner.index.entry(k) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(slot);
                }
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    if slot.stamp >= e.get().stamp {
                        e.insert(slot);
                    }
                }
            }
        }
        Ok(())
    }

    /// All live entries (index plus pending), sorted by namespace then key.
    pub fn entries(&self) -> Vec<EntryInfo> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut out: Vec<EntryInfo> = inner
            .index
            .iter()
            .map(|((ns, key), s)| EntryInfo {
                ns: ns.clone(),
                key: *key,
                len: u64::from(s.payload_len),
                stamp: s.stamp,
                pending: false,
            })
            .collect();
        for ((ns, key), p) in &inner.pending {
            if let Some(e) = out.iter_mut().find(|e| &e.ns == ns && e.key == *key) {
                if p.stamp >= e.stamp {
                    e.len = p.payload.len() as u64;
                    e.stamp = p.stamp;
                    e.pending = true;
                }
            } else {
                out.push(EntryInfo {
                    ns: ns.clone(),
                    key: *key,
                    len: p.payload.len() as u64,
                    stamp: p.stamp,
                    pending: true,
                });
            }
        }
        out.sort_by(|a, b| (&a.ns, a.key).cmp(&(&b.ns, b.key)));
        out
    }

    /// Aggregate statistics over the store.
    pub fn stat(&self) -> io::Result<StoreStat> {
        let mut st = StoreStat::default();
        for seg in self.segment_paths()? {
            st.segments += 1;
            st.disk_bytes += fs::metadata(&seg).map(|m| m.len()).unwrap_or(0);
        }
        for e in self.entries() {
            st.entries += 1;
            let (n, b) = st.by_ns.entry(e.ns).or_insert((0, 0));
            *n += 1;
            *b += e.len;
        }
        Ok(st)
    }

    /// Scan every segment end to end, checking magic, version, structure,
    /// and the CRC of every record. Read-only; problems are reported, not
    /// repaired (GC compaction drops them).
    pub fn verify(&self) -> io::Result<VerifyReport> {
        let mut report = VerifyReport::default();
        for seg in self.segment_paths()? {
            report.segments += 1;
            let name = seg
                .file_name()
                .unwrap_or_default()
                .to_string_lossy()
                .into_owned();
            let bytes = match fs::read(&seg) {
                Ok(b) => b,
                Err(e) => {
                    report.problems.push(format!("{name}: unreadable: {e}"));
                    continue;
                }
            };
            if let Err(why) = segment_header(&bytes) {
                report.problems.push(format!("{name}: {why}"));
                continue;
            }
            let mut pos = SEGMENT_HEADER_LEN as usize;
            while pos < bytes.len() {
                match parse_record(&bytes, pos) {
                    Ok(rec) => {
                        let payload = &bytes[rec.payload_at as usize
                            ..rec.payload_at as usize + rec.payload_len as usize];
                        if record_crc(rec.ns, rec.key, rec.stamp, payload) == rec.crc {
                            report.records_ok += 1;
                        } else {
                            report.problems.push(format!(
                                "{name}: record at offset {pos} ({} {}): CRC mismatch",
                                rec.ns,
                                rec.key.hex()
                            ));
                        }
                        pos = rec.end;
                    }
                    Err(why) => {
                        report
                            .problems
                            .push(format!("{name}: record at offset {pos}: {why}"));
                        break;
                    }
                }
            }
        }
        Ok(report)
    }

    /// Compact the store to at most `max_bytes` of record data, keeping the
    /// newest entries by stamp. Flushes pending writes first, takes the
    /// directory lock, rewrites survivors into one fresh segment, and
    /// deletes every old segment. Corrupt records are dropped.
    pub fn gc(&self, max_bytes: u64) -> io::Result<GcStats> {
        self.flush()?;
        let _lock = DirLock::acquire(&self.dir)?;
        self.refresh()?; // pick up segments other processes flushed

        // Materialize every live record (payload + metadata), newest first.
        let slots: Vec<((String, Key), Slot)> = {
            let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner
                .index
                .iter()
                .map(|(k, s)| (k.clone(), s.clone()))
                .collect()
        };
        let mut live: Vec<((String, Key), Slot, Vec<u8>)> = Vec::with_capacity(slots.len());
        let mut stats = GcStats::default();
        for (k, slot) in slots {
            match read_payload(&slot) {
                Some(p) if record_crc(&k.0, k.1, slot.stamp, &p) == slot.crc => {
                    live.push((k, slot, p));
                }
                _ => {
                    stats.dropped_corrupt += 1;
                    self.corrupts.inc();
                }
            }
        }
        live.sort_by(|a, b| b.1.stamp.cmp(&a.1.stamp).then_with(|| a.0.cmp(&b.0)));

        let mut kept_bytes = 0u64;
        let mut keep = Vec::new();
        for (k, slot, payload) in live {
            let sz = record_len(&k.0, payload.len());
            if kept_bytes + sz <= max_bytes {
                kept_bytes += sz;
                keep.push((k, slot, payload));
            } else {
                stats.evicted += 1;
                self.evicts.inc();
            }
        }
        stats.kept = keep.len() as u64;
        keep.sort_by(|a, b| a.0.cmp(&b.0));

        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        for (k, slot, payload) in &keep {
            append_record(&mut buf, &k.0, k.1, slot.stamp, payload);
        }
        let old = self.segment_paths()?;
        let tmp = self.dir.join("gc.tmp");
        let seg = self.dir.join(format!(
            "seg-gc-{}-{}.seg",
            std::process::id(),
            self.flush_seq.fetch_add(1, Ordering::Relaxed)
        ));
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&buf)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &seg)?;
        for p in old {
            let _ = fs::remove_file(p);
        }
        self.refresh()?;
        stats.disk_bytes = buf.len() as u64;
        Ok(stats)
    }

    fn segment_paths(&self) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in fs::read_dir(&self.dir)? {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) == Some("seg") {
                out.push(path);
            }
        }
        out.sort();
        Ok(out)
    }
}

fn read_payload(slot: &Slot) -> Option<Vec<u8>> {
    let mut f = File::open(&slot.seg).ok()?;
    f.seek(SeekFrom::Start(slot.payload_at)).ok()?;
    let mut payload = vec![0u8; slot.payload_len as usize];
    f.read_exact(&mut payload).ok()?;
    Some(payload)
}

fn append_record(buf: &mut Vec<u8>, ns: &str, key: Key, stamp: u64, payload: &[u8]) {
    buf.extend_from_slice(&(ns.len() as u16).to_le_bytes());
    buf.extend_from_slice(ns.as_bytes());
    buf.extend_from_slice(&key.hi.to_le_bytes());
    buf.extend_from_slice(&key.lo.to_le_bytes());
    buf.extend_from_slice(&stamp.to_le_bytes());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&record_crc(ns, key, stamp, payload).to_le_bytes());
    buf.extend_from_slice(payload);
}

struct RawRecord<'a> {
    ns: &'a str,
    key: Key,
    stamp: u64,
    payload_len: u32,
    payload_at: u64,
    crc: u32,
    end: usize,
}

fn segment_header(bytes: &[u8]) -> Result<(), &'static str> {
    if bytes.len() < SEGMENT_HEADER_LEN as usize {
        return Err("shorter than a segment header");
    }
    if bytes[..4] != MAGIC {
        return Err("bad magic (foreign file)");
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err("unsupported format version (foreign store)");
    }
    Ok(())
}

fn parse_record(bytes: &[u8], at: usize) -> Result<RawRecord<'_>, &'static str> {
    let need = |n: usize, pos: usize| -> Result<(), &'static str> {
        if pos + n > bytes.len() {
            Err("truncated record")
        } else {
            Ok(())
        }
    };
    let mut pos = at;
    need(2, pos)?;
    let ns_len = u16::from_le_bytes(bytes[pos..pos + 2].try_into().unwrap()) as usize;
    pos += 2;
    need(ns_len, pos)?;
    let ns = std::str::from_utf8(&bytes[pos..pos + ns_len]).map_err(|_| "non-UTF-8 namespace")?;
    pos += ns_len;
    need(16 + 8 + 4 + 4, pos)?;
    let hi = u64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap());
    let lo = u64::from_le_bytes(bytes[pos + 8..pos + 16].try_into().unwrap());
    let stamp = u64::from_le_bytes(bytes[pos + 16..pos + 24].try_into().unwrap());
    let payload_len = u32::from_le_bytes(bytes[pos + 24..pos + 28].try_into().unwrap());
    let crc = u32::from_le_bytes(bytes[pos + 28..pos + 32].try_into().unwrap());
    pos += 32;
    need(payload_len as usize, pos)?;
    Ok(RawRecord {
        ns,
        key: Key { hi, lo },
        stamp,
        payload_len,
        payload_at: pos as u64,
        crc,
        end: pos + payload_len as usize,
    })
}

/// Walk every well-formed record of a segment, stopping at the first
/// damage. Foreign/unversioned segments yield nothing.
fn scan_segment(bytes: &[u8], mut f: impl FnMut(&RawRecord<'_>)) {
    if segment_header(bytes).is_err() {
        return;
    }
    let mut pos = SEGMENT_HEADER_LEN as usize;
    while pos < bytes.len() {
        match parse_record(bytes, pos) {
            Ok(rec) => {
                pos = rec.end;
                f(&rec);
            }
            Err(_) => break,
        }
    }
}

/// Exclusive advisory lock on a store directory, held while compacting.
/// Created with `create_new` (atomic on every real filesystem); a lock
/// older than [`LOCK_STALE_AFTER`] is presumed abandoned by a crashed
/// process and stolen.
struct DirLock {
    path: PathBuf,
}

impl DirLock {
    fn acquire(dir: &Path) -> io::Result<DirLock> {
        let path = dir.join(".lock");
        for _ in 0..1_000 {
            match OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(mut f) => {
                    let _ = write!(f, "{}", std::process::id());
                    return Ok(DirLock { path });
                }
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    let stale = fs::metadata(&path)
                        .and_then(|m| m.modified())
                        .ok()
                        .and_then(|m| m.elapsed().ok())
                        .is_some_and(|age| age > LOCK_STALE_AFTER);
                    if stale {
                        let _ = fs::remove_file(&path);
                        continue;
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(e) => return Err(e),
            }
        }
        Err(io::Error::new(
            io::ErrorKind::TimedOut,
            "sim-store directory lock is busy",
        ))
    }
}

impl Drop for DirLock {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
    }
}

static GLOBAL: OnceLock<Option<Arc<Store>>> = OnceLock::new();

/// Install the process-wide store at `dir` (metrics-registered). Called by
/// experiment option parsing when `--store` is given. First install wins;
/// later calls (same or different directory) are ignored.
pub fn install_global(dir: &Path) -> io::Result<()> {
    let store = Store::registered(dir)?;
    let _ = GLOBAL.set(Some(Arc::new(store)));
    Ok(())
}

/// The process-wide store, if one is configured. Without an explicit
/// [`install_global`], the `SIM_STORE` environment variable (a directory
/// path) is consulted once; an unset variable or an unopenable directory
/// means no store, and callers behave exactly as before the store existed.
pub fn global() -> Option<Arc<Store>> {
    GLOBAL
        .get_or_init(|| {
            let dir: PathBuf = sim_obs::env_val("SIM_STORE")?;
            Store::registered(&dir).ok().map(Arc::new)
        })
        .clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A fresh scratch directory per test (std-only; no tempfile crate).
    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("simstore-test-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC32 check value.
        assert_eq!(crc32(&[b"123456789"]), 0xcbf4_3926);
        assert_eq!(crc32(&[b"1234", b"56789"]), 0xcbf4_3926);
        assert_eq!(crc32(&[]), 0);
    }

    #[test]
    fn key_is_stable_and_sensitive() {
        assert_eq!(Key::of(b"abc"), Key::of(b"abc"));
        assert_ne!(Key::of(b"abc"), Key::of(b"abd"));
        assert_eq!(Key::of(b"abc").hex().len(), 32);
    }

    #[test]
    fn put_get_flush_reopen_roundtrip() {
        let dir = scratch("roundtrip");
        let store = Store::open(&dir).unwrap();
        let k = Key::of(b"the-run");
        assert_eq!(store.get("run/v1", k), None);
        store.put("run/v1", k, vec![1, 2, 3, 4]);
        // Visible before flush (write-behind buffer).
        assert_eq!(store.get("run/v1", k), Some(vec![1, 2, 3, 4]));
        store.flush().unwrap();
        assert_eq!(store.pending_len(), 0);
        assert_eq!(store.get("run/v1", k), Some(vec![1, 2, 3, 4]));
        drop(store);

        // A second open (fresh process, conceptually) sees the artifact.
        let store2 = Store::open(&dir).unwrap();
        assert_eq!(store2.get("run/v1", k), Some(vec![1, 2, 3, 4]));
        // Same key in a different namespace is a different artifact.
        assert_eq!(store2.get("arch/v1", k), None);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn newest_write_wins_across_flushes() {
        let dir = scratch("lww");
        let store = Store::open(&dir).unwrap();
        let k = Key::of(b"x");
        store.put("run/v1", k, b"old".to_vec());
        store.flush().unwrap();
        store.put("run/v1", k, b"new".to_vec());
        store.flush().unwrap();
        assert_eq!(store.get("run/v1", k), Some(b"new".to_vec()));
        let reopened = Store::open(&dir).unwrap();
        assert_eq!(reopened.get("run/v1", k), Some(b"new".to_vec()));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn flipped_payload_byte_is_detected_and_falls_back_to_miss() {
        let dir = scratch("flip");
        let store = Store::open(&dir).unwrap();
        let k = Key::of(b"victim");
        store.put("run/v1", k, vec![0xaa; 64]);
        store.flush().unwrap();
        drop(store);

        // Flip one payload byte in the only segment.
        let seg = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().and_then(|e| e.to_str()) == Some("seg"))
            .unwrap();
        let mut bytes = fs::read(&seg).unwrap();
        let n = bytes.len();
        bytes[n - 10] ^= 0xff;
        fs::write(&seg, &bytes).unwrap();

        let store = Store::open(&dir).unwrap();
        assert_eq!(store.get("run/v1", k), None, "corrupt entry must miss");
        // Counted, and the entry was dropped so the next get is a plain miss.
        assert_eq!(store.get("run/v1", k), None);
        let report = store.verify().unwrap();
        assert!(!report.clean());
        assert!(report.problems[0].contains("CRC mismatch"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_segment_keeps_earlier_records() {
        let dir = scratch("trunc");
        let store = Store::open(&dir).unwrap();
        let ka = Key::of(b"a");
        let kb = Key::of(b"b");
        store.put("run/v1", ka, vec![1; 32]);
        store.put("run/v1", kb, vec![2; 32]);
        store.flush().unwrap();
        drop(store);

        let seg = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().and_then(|e| e.to_str()) == Some("seg"))
            .unwrap();
        let bytes = fs::read(&seg).unwrap();
        // Chop into the second record's payload (keys sort a before b).
        fs::write(&seg, &bytes[..bytes.len() - 16]).unwrap();

        let store = Store::open(&dir).unwrap();
        assert_eq!(
            store.get("run/v1", ka),
            Some(vec![1; 32]),
            "undamaged record survives"
        );
        assert_eq!(store.get("run/v1", kb), None, "truncated record is gone");
        assert!(!store.verify().unwrap().clean());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn future_format_version_is_foreign_not_misread() {
        let dir = scratch("version");
        let store = Store::open(&dir).unwrap();
        let k = Key::of(b"artifact");
        store.put("run/v1", k, vec![9; 16]);
        store.flush().unwrap();

        // Bump the on-disk version: a store written by a newer format.
        let seg = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.extension().and_then(|e| e.to_str()) == Some("seg"))
            .unwrap();
        let mut bytes = fs::read(&seg).unwrap();
        bytes[4..8].copy_from_slice(&(FORMAT_VERSION + 1).to_le_bytes());
        fs::write(&seg, &bytes).unwrap();

        store.refresh().unwrap();
        assert_eq!(
            store.get("run/v1", k),
            None,
            "foreign segment is never trusted"
        );
        let report = store.verify().unwrap();
        assert!(report.problems.iter().any(|p| p.contains("format version")));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_keeps_newest_within_budget_and_compacts() {
        let dir = scratch("gc");
        let store = Store::open(&dir).unwrap();
        for i in 0..10u8 {
            store.put("run/v1", Key::of(&[i]), vec![i; 100]);
            store.flush().unwrap(); // one segment per record
        }
        assert_eq!(store.segment_paths().unwrap().len(), 10);

        // Budget for roughly four records.
        let one = record_len("run/v1", 100);
        let stats = store.gc(4 * one).unwrap();
        assert_eq!(stats.kept, 4);
        assert_eq!(stats.evicted, 6);
        assert_eq!(
            store.segment_paths().unwrap().len(),
            1,
            "compacted to one segment"
        );
        // The newest four survive, the oldest six are gone.
        for i in 0..6u8 {
            assert_eq!(store.get("run/v1", Key::of(&[i])), None);
        }
        for i in 6..10u8 {
            assert_eq!(store.get("run/v1", Key::of(&[i])), Some(vec![i; 100]));
        }
        assert!(store.verify().unwrap().clean());
        assert!(!dir.join(".lock").exists(), "lock released");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn stat_and_entries_report_live_state() {
        let dir = scratch("stat");
        let store = Store::open(&dir).unwrap();
        store.put("run/v1", Key::of(b"r"), vec![0; 10]);
        store.put("arch/v1", Key::of(b"a"), vec![0; 20]);
        store.flush().unwrap();
        store.put("warm/v1", Key::of(b"w"), vec![0; 30]); // still pending
        let st = store.stat().unwrap();
        assert_eq!(st.entries, 3);
        assert_eq!(st.segments, 1);
        assert_eq!(st.by_ns["run/v1"], (1, 10));
        assert_eq!(st.by_ns["arch/v1"], (1, 20));
        assert_eq!(st.by_ns["warm/v1"], (1, 30));
        let entries = store.entries();
        assert_eq!(entries.len(), 3);
        assert!(entries.iter().any(|e| e.pending && e.ns == "warm/v1"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn counters_track_traffic() {
        let dir = scratch("counters");
        let store = Store::open(&dir).unwrap();
        let k = Key::of(b"c");
        assert_eq!(store.get("run/v1", k), None);
        store.put("run/v1", k, vec![1]);
        store.flush().unwrap();
        assert!(store.get("run/v1", k).is_some());
        assert_eq!(store.hits.get(), 1);
        assert_eq!(store.misses.get(), 1);
        assert_eq!(store.writes.get(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn refresh_sees_segments_written_by_another_store_handle() {
        let dir = scratch("cross");
        let a = Store::open(&dir).unwrap();
        let b = Store::open(&dir).unwrap();
        let k = Key::of(b"shared");
        a.put("run/v1", k, vec![5; 8]);
        a.flush().unwrap();
        assert_eq!(b.get("run/v1", k), None, "stale index until refresh");
        b.refresh().unwrap();
        assert_eq!(b.get("run/v1", k), Some(vec![5; 8]));
        let _ = fs::remove_dir_all(&dir);
    }
}
