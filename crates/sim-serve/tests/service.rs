//! End-to-end service tests: an in-process `simserve` on a loopback port,
//! driven through the real wire protocol by [`sim_serve::Client`].
//!
//! These cover the service-layer acceptance points: streamed submits
//! produce valid schema-v1 ledger records, resubmission dedupes while
//! still reporting the full modeled cost, both cancellation phases
//! (queued jobs never start; in-flight jobs stop at a chunk boundary)
//! leave the store consistent, and two interleaved jobs stream exactly
//! the per-job ledgers a sequential run produces.
//!
//! The daemon installs process-wide state (store, worker budget, span
//! tracing), so every test serializes on one lock and all servers share
//! one store directory — which also mirrors production: one long-lived
//! store, many daemon lifetimes.

use sim_obs::json::Json;
use sim_serve::proto::{JobDesc, Request};
use sim_serve::{Client, Server, ServerConfig};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

fn lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn store_dir() -> PathBuf {
    static DIR: OnceLock<PathBuf> = OnceLock::new();
    DIR.get_or_init(|| {
        let d = std::env::temp_dir().join(format!("sim-serve-it-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&d);
        d
    })
    .clone()
}

struct Daemon {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<std::io::Result<()>>,
}

fn start(active: usize) -> Daemon {
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        jobs: 2,
        active,
        queue_cap: 8,
        drain_timeout: Duration::from_secs(10),
        store: Some(store_dir()),
    };
    let server = Server::bind(cfg).expect("daemon binds a loopback port");
    let addr = server.local_addr().expect("bound address");
    let shutdown = server.shutdown_handle();
    let handle = std::thread::spawn(move || server.run());
    Daemon {
        addr,
        shutdown,
        handle,
    }
}

impl Daemon {
    fn client(&self) -> Client {
        Client::connect(&self.addr.to_string()).expect("client connects")
    }

    /// Graceful stop via the shutdown handle (the wire op's path), then
    /// check the drained server exited cleanly and the store verifies.
    fn stop(self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.handle
            .join()
            .expect("server thread joins")
            .expect("server drains cleanly");
        let store = sim_store::global().expect("store installed");
        let report = store.verify().expect("store verify runs");
        assert!(report.clean(), "store inconsistent: {report:?}");
    }
}

fn job(benches: &[&str], specs: &[&str]) -> JobDesc {
    JobDesc {
        benches: benches.iter().map(|s| s.to_string()).collect(),
        scale: 0.05,
        specs: specs.iter().map(|s| s.to_string()).collect(),
        configs: vec!["default".to_string()],
        priority: 0,
    }
}

/// The deterministic projection of a ledger record: everything except
/// wall time, reuse provenance, and the phase/shard footprints — the same
/// idiom `tests/obs_determinism.rs` uses for run-to-run comparison.
fn canon(line: &str) -> String {
    let j = Json::parse(line).expect("record line parses as JSON");
    let s = |k: &str| j.get(k).and_then(Json::as_str).unwrap_or("").to_string();
    let n = |j: &Json, k: &str| {
        j.get(k)
            .and_then(Json::as_f64)
            .map(|v| format!("{v}"))
            .unwrap_or_default()
    };
    let cost = j.get("cost").expect("record has a cost object");
    format!(
        "{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}",
        s("bench"),
        n(&j, "scale"),
        s("cfg"),
        s("technique"),
        s("spec"),
        n(&j, "cpi"),
        n(&j, "measured_insts"),
        n(cost, "detailed"),
        n(cost, "warmed"),
        n(cost, "skipped"),
        n(cost, "profiled"),
        n(cost, "extra_runs"),
        n(cost, "work_units"),
    )
}

/// Parse a `{"serve":"status",...}` line into `(id, state, done)` rows.
fn status_rows(line: &str) -> Vec<(u64, String, u64)> {
    let j = Json::parse(line).expect("status line parses");
    let Some(Json::Arr(jobs)) = j.get("jobs") else {
        panic!("status line without jobs array: {line}");
    };
    jobs.iter()
        .map(|row| {
            (
                row.get("id").and_then(Json::as_u64).expect("job id"),
                row.get("state")
                    .and_then(Json::as_str)
                    .expect("job state")
                    .to_string(),
                row.get("done").and_then(Json::as_u64).expect("done count"),
            )
        })
        .collect()
}

fn wait_for_state(client: &mut Client, id: u64, want: &[&str]) -> (String, u64) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let line = client.status(Some(id)).expect("status roundtrip");
        if let Some((_, state, done)) = status_rows(&line).into_iter().find(|(i, _, _)| *i == id) {
            if want.contains(&state.as_str()) {
                return (state, done);
            }
        }
        assert!(
            Instant::now() < deadline,
            "job {id} never reached {want:?}: {line}"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

#[test]
fn streamed_submit_yields_valid_records_and_resubmission_dedupes() {
    let _g = lock();
    let d = start(2);
    let mut client = d.client();
    let desc = job(&["gzip", "mcf"], &["runz:z=50k", "ffrun:x=20k,z=30k"]);

    let mut first = Vec::new();
    let out1 = client
        .submit_streaming(&desc, |line| first.push(line.to_string()))
        .expect("first submit streams");
    assert_eq!(out1.state, "done");
    assert_eq!(out1.runs, 4, "2 benches x 2 specs");
    assert_eq!(out1.records as usize, first.len());
    assert_eq!(out1.records, 4);
    for line in &first {
        let j = Json::parse(line).expect("ledger record parses");
        for key in sim_obs::ledger::REQUIRED_KEYS {
            assert!(j.get(key).is_some(), "record missing {key:?}: {line}");
        }
        assert!(
            j.get("serve").is_none(),
            "record lines must not carry the control key"
        );
    }

    // Resubmission: every run is a reuse hit (memory cache in-process,
    // store across restarts), short-circuiting the simulation but still
    // reporting the full modeled cost and identical deterministic fields.
    let mut second = Vec::new();
    let out2 = client
        .submit_streaming(&desc, |line| second.push(line.to_string()))
        .expect("resubmit streams");
    assert_eq!(out2.state, "done");
    assert_eq!(out2.records, out1.records);
    assert_eq!(
        out2.store_hits + parse_cache_hits(&out2.done_line),
        out2.records,
        "resubmission must be served entirely from reuse tiers: {}",
        out2.done_line
    );
    let mut canon1: Vec<String> = first.iter().map(|l| canon(l)).collect();
    let mut canon2: Vec<String> = second.iter().map(|l| canon(l)).collect();
    canon1.sort();
    canon2.sort();
    assert_eq!(canon1, canon2, "dedupe changed the reported results");

    let work = |line: &str| {
        Json::parse(line)
            .unwrap()
            .get("work_units")
            .and_then(Json::as_f64)
            .expect("done line has work_units")
    };
    let (w1, w2) = (work(&out1.done_line), work(&out2.done_line));
    assert!(
        (w1 - w2).abs() < 1e-9 * w1.max(1.0),
        "reuse hits must charge the full stored cost: {w1} vs {w2}"
    );
    d.stop();
}

fn parse_cache_hits(done_line: &str) -> u64 {
    Json::parse(done_line)
        .unwrap()
        .get("cache_hits")
        .and_then(Json::as_u64)
        .unwrap_or(0)
}

#[test]
fn cancelling_a_queued_job_never_starts_it() {
    let _g = lock();
    let d = start(1); // one scheduler slot: the second job must queue
    let mut client = d.client();

    // A long job occupies the only slot (many run items — the scheduler
    // stays busy for the whole plan, not just one simulation)...
    let ack = client
        .roundtrip(&Request::Submit {
            job: job(&["all"], &["runz:z=2900k", "runz:z=3100k"]),
            stream: false,
        })
        .expect("long job admitted");
    let long_id = Json::parse(&ack)
        .unwrap()
        .get("id")
        .and_then(Json::as_u64)
        .expect("ack id");

    // ...so this one parks in the queue and cancels before it starts.
    let ack = client
        .roundtrip(&Request::Submit {
            job: job(&["mcf"], &["runz:z=31k"]),
            stream: false,
        })
        .expect("queued job admitted");
    let queued_id = Json::parse(&ack)
        .unwrap()
        .get("id")
        .and_then(Json::as_u64)
        .expect("ack id");
    let detail = client.cancel(queued_id).expect("cancel queued job");
    assert!(
        detail.contains("cancelled before start"),
        "unexpected cancel detail: {detail}"
    );
    let (state, done) = wait_for_state(&mut client, queued_id, &["cancelled"]);
    assert_eq!(
        (state.as_str(), done),
        ("cancelled", 0),
        "job must never run"
    );
    assert!(
        client.cancel(queued_id).is_err(),
        "terminal jobs cannot be re-cancelled"
    );

    // The long job is unaffected: let it finish, then verify the store.
    let (state, _) = wait_for_state(&mut client, long_id, &["done"]);
    assert_eq!(state, "done");
    d.stop();
}

#[test]
fn cancelling_an_inflight_job_stops_at_a_chunk_boundary() {
    let _g = lock();
    let d = start(1);

    // 12 run items with spec values no other test uses, so every item is
    // a real simulation (no reuse hit) and the job runs long enough to
    // cancel mid-flight.
    let specs = [
        "runz:z=1100k",
        "runz:z=1200k",
        "runz:z=1300k",
        "runz:z=1400k",
        "runz:z=1500k",
        "runz:z=1600k",
    ];
    let desc = job(&["gzip", "mcf"], &specs);

    let addr = d.addr.to_string();
    let streamer = std::thread::spawn(move || {
        let mut client = Client::connect(&addr).expect("streamer connects");
        let mut records = Vec::new();
        let out = client
            .submit_streaming(&desc, |line| records.push(line.to_string()))
            .expect("streamed submit");
        (out, records)
    });

    // Wait until the driver claims the job, then cancel over the wire.
    let mut client = d.client();
    let deadline = Instant::now() + Duration::from_secs(120);
    let id = loop {
        let rows = status_rows(&client.status(None).expect("status"));
        if let Some((id, _, _)) = rows.iter().find(|(_, s, _)| s == "running") {
            break *id;
        }
        assert!(Instant::now() < deadline, "job never started running");
        std::thread::sleep(Duration::from_millis(1));
    };
    let detail = client.cancel(id).expect("cancel in-flight job");
    assert!(
        detail.contains("chunk boundary"),
        "unexpected cancel detail: {detail}"
    );

    let (out, records) = streamer.join().expect("streamer joins");
    assert_eq!(out.state, "cancelled");
    assert!(
        out.records < out.runs,
        "cancellation must leave unstarted runs unstarted ({} of {} ran)",
        out.records,
        out.runs
    );
    assert_eq!(out.records as usize, records.len());
    // Completed runs were streamed and written through before the stop;
    // Daemon::stop re-verifies the store below.
    d.stop();
}

#[test]
fn interleaved_jobs_stream_the_same_ledgers_as_sequential() {
    let _g = lock();
    let d = start(2); // two scheduler slots: jobs genuinely overlap

    // Disjoint jobs (different benches) so per-job ledgers are comparable
    // record-for-record regardless of scheduling order.
    let desc_a = job(&["gzip"], &["runz:z=210k", "runz:z=220k", "runz:z=230k"]);
    let desc_b = job(&["mcf"], &["runz:z=240k", "runz:z=250k", "runz:z=260k"]);

    let run_one = |addr: String, desc: JobDesc, barrier: Option<Arc<Barrier>>| {
        let mut client = Client::connect(&addr).expect("client connects");
        if let Some(b) = &barrier {
            b.wait();
        }
        let mut records = Vec::new();
        let out = client
            .submit_streaming(&desc, |line| records.push(line.to_string()))
            .expect("submit streams");
        assert_eq!(out.state, "done");
        let mut canon: Vec<String> = records.iter().map(|l| canon(l)).collect();
        canon.sort();
        canon
    };

    // Sequential baseline: one after the other.
    let seq_a = run_one(d.addr.to_string(), desc_a.clone(), None);
    let seq_b = run_one(d.addr.to_string(), desc_b.clone(), None);
    assert_eq!(seq_a.len(), 3);
    assert_eq!(seq_b.len(), 3);

    // Interleaved: both submitted at once, racing on the shared budget.
    let barrier = Arc::new(Barrier::new(2));
    let (addr_a, addr_b) = (d.addr.to_string(), d.addr.to_string());
    let (ba, bb) = (Arc::clone(&barrier), Arc::clone(&barrier));
    let (db2, da2) = (desc_b.clone(), desc_a.clone());
    let ta = std::thread::spawn(move || run_one(addr_a, da2, Some(ba)));
    let tb = std::thread::spawn(move || run_one(addr_b, db2, Some(bb)));
    let inter_a = ta.join().expect("job A thread");
    let inter_b = tb.join().expect("job B thread");

    // Same per-job ledgers, and no cross-job leakage in either direction.
    assert_eq!(seq_a, inter_a, "job A's ledger changed under interleaving");
    assert_eq!(seq_b, inter_b, "job B's ledger changed under interleaving");
    assert!(
        inter_a.iter().all(|r| r.starts_with("gzip|")),
        "job A streamed a record that is not its own"
    );
    assert!(
        inter_b.iter().all(|r| r.starts_with("mcf|")),
        "job B streamed a record that is not its own"
    );
    d.stop();
}
