//! The wire protocol: line-delimited JSON over TCP, one object per line.
//!
//! ## Requests (client → server)
//!
//! ```json
//! {"op":"submit","job":{"benches":["gzip"],"scale":0.05,
//!  "specs":["smarts:u=1000,w=2000"],"configs":["default"],
//!  "priority":0},"stream":true}
//! {"op":"cancel","id":3}
//! {"op":"status"}           // or {"op":"status","id":3}
//! {"op":"ping"}
//! {"op":"shutdown"}
//! ```
//!
//! Job fields `scale` (default 1.0), `configs` (default `["default"]`) and
//! `priority` (default 0; higher runs first) are optional. The spec/config
//! string vocabulary is [`techniques::jobs`].
//!
//! ## Responses (server → client)
//!
//! Every *control* line carries a `"serve"` key naming its kind — `ack`,
//! `done`, `error`, `pong`, `status`, `ok`:
//!
//! ```json
//! {"serve":"ack","ok":true,"id":3,"runs":40}
//! {"serve":"done","ok":true,"id":3,"state":"done","records":40,
//!  "store_hits":38,"cache_hits":0,"computed":2,"na":0,
//!  "work_units":123.5,"wall_ms":210}
//! {"serve":"error","ok":false,"error":"queue full"}
//! ```
//!
//! Between `ack` and `done`, a streaming submit receives the job's run
//! records verbatim — schema-v1 ledger lines with **no** `"serve"` key,
//! exactly what `--trace-out` writes — so a client can tee them straight
//! into `simreport`. Consumers tell the two apart by the `"serve"` key.

use sim_obs::json::{escape, num, Json};

/// Default daemon address (loopback only; the daemon is not an
/// authenticated service).
pub const DEFAULT_ADDR: &str = "127.0.0.1:7411";

/// One experiment job, as described on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct JobDesc {
    /// Benchmark names (Table 2 rows), or `"all"`.
    pub benches: Vec<String>,
    /// Stream-length scale (quick jobs scale streams and parameters
    /// together, like the offline `--scale`).
    pub scale: f64,
    /// Technique spec strings ([`techniques::jobs::parse_specs`]).
    pub specs: Vec<String>,
    /// Config strings ([`techniques::jobs::parse_config`]); empty means
    /// `["default"]`.
    pub configs: Vec<String>,
    /// Admission priority: higher runs first; ties in submit order.
    pub priority: i64,
}

impl Default for JobDesc {
    fn default() -> Self {
        JobDesc {
            benches: Vec::new(),
            scale: 1.0,
            specs: Vec::new(),
            configs: Vec::new(),
            priority: 0,
        }
    }
}

fn str_array(v: &[String]) -> String {
    let mut s = String::from("[");
    for (i, x) in v.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push('"');
        s.push_str(&escape(x));
        s.push('"');
    }
    s.push(']');
    s
}

fn parse_str_array(j: &Json, key: &str) -> Result<Vec<String>, String> {
    match j.get(key) {
        None => Ok(Vec::new()),
        Some(Json::Arr(items)) => items
            .iter()
            .map(|x| {
                x.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| format!("{key} entries must be strings"))
            })
            .collect(),
        Some(_) => Err(format!("{key} must be an array of strings")),
    }
}

impl JobDesc {
    /// Serialize as the `"job"` object of a submit request.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"benches\":{},\"scale\":{},\"specs\":{},\"configs\":{},\"priority\":{}}}",
            str_array(&self.benches),
            num(self.scale),
            str_array(&self.specs),
            str_array(&self.configs),
            self.priority,
        )
    }

    /// Parse the `"job"` object of a submit request.
    pub fn from_json(j: &Json) -> Result<JobDesc, String> {
        let benches = parse_str_array(j, "benches")?;
        let specs = parse_str_array(j, "specs")?;
        let configs = parse_str_array(j, "configs")?;
        let scale = match j.get("scale") {
            None => 1.0,
            Some(v) => v.as_f64().ok_or("scale must be a number")?,
        };
        let priority = match j.get("priority") {
            None => 0,
            Some(Json::Num(n)) if n.fract() == 0.0 && n.abs() <= 2f64.powi(53) => *n as i64,
            Some(_) => return Err("priority must be an integer".to_string()),
        };
        Ok(JobDesc {
            benches,
            scale,
            specs,
            configs,
            priority,
        })
    }
}

/// A parsed client request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a job; `stream` asks for the record stream (default true).
    Submit {
        /// The job description.
        job: JobDesc,
        /// Stream records back on this connection until the job finishes.
        stream: bool,
    },
    /// Cancel a queued or in-flight job by id.
    Cancel {
        /// The job id from the submit ack.
        id: u64,
    },
    /// Queue/job status; `id` narrows to one job.
    Status {
        /// Optional job id.
        id: Option<u64>,
    },
    /// Liveness probe.
    Ping,
    /// Ask the daemon to shut down gracefully (same path as SIGTERM).
    Shutdown,
}

impl Request {
    /// Serialize as one request line (no trailing newline).
    pub fn to_json(&self) -> String {
        match self {
            Request::Submit { job, stream } => {
                format!(
                    "{{\"op\":\"submit\",\"job\":{},\"stream\":{stream}}}",
                    job.to_json()
                )
            }
            Request::Cancel { id } => format!("{{\"op\":\"cancel\",\"id\":{id}}}"),
            Request::Status { id: Some(id) } => format!("{{\"op\":\"status\",\"id\":{id}}}"),
            Request::Status { id: None } => "{\"op\":\"status\"}".to_string(),
            Request::Ping => "{\"op\":\"ping\"}".to_string(),
            Request::Shutdown => "{\"op\":\"shutdown\"}".to_string(),
        }
    }
}

/// Parse one request line.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let j = Json::parse(line).map_err(|e| format!("bad request JSON: {e}"))?;
    let op = j
        .get("op")
        .and_then(Json::as_str)
        .ok_or("request is missing \"op\"")?;
    match op {
        "submit" => {
            let job = JobDesc::from_json(j.get("job").ok_or("submit is missing \"job\"")?)?;
            let stream = match j.get("stream") {
                None => true,
                Some(Json::Bool(b)) => *b,
                Some(_) => return Err("stream must be a boolean".to_string()),
            };
            Ok(Request::Submit { job, stream })
        }
        "cancel" => Ok(Request::Cancel {
            id: j
                .get("id")
                .and_then(Json::as_u64)
                .ok_or("cancel is missing a numeric \"id\"")?,
        }),
        "status" => Ok(Request::Status {
            id: j.get("id").and_then(Json::as_u64),
        }),
        "ping" => Ok(Request::Ping),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(format!("unknown op {other:?}")),
    }
}

/// `{"serve":"error","ok":false,"error":"..."}`.
pub fn error_line(msg: &str) -> String {
    format!(
        "{{\"serve\":\"error\",\"ok\":false,\"error\":\"{}\"}}",
        escape(msg)
    )
}

/// `{"serve":"ack","ok":true,"id":N,"runs":M}` — submit accepted.
pub fn ack_line(id: u64, runs: usize) -> String {
    format!("{{\"serve\":\"ack\",\"ok\":true,\"id\":{id},\"runs\":{runs}}}")
}

/// `{"serve":"ok","ok":true}` — generic success (cancel, shutdown).
pub fn ok_line() -> String {
    "{\"serve\":\"ok\",\"ok\":true}".to_string()
}

/// `{"serve":"pong","ok":true}`.
pub fn pong_line() -> String {
    "{\"serve\":\"pong\",\"ok\":true}".to_string()
}

/// Whether a response line is a control line (vs a verbatim run record).
pub fn is_control(j: &Json) -> bool {
    j.get("serve").is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_round_trips() {
        let job = JobDesc {
            benches: vec!["gzip".into(), "mcf".into()],
            scale: 0.05,
            specs: vec!["smarts:u=1000,w=2000".into()],
            configs: vec!["table3:1".into()],
            priority: 2,
        };
        let line = Request::Submit {
            job: job.clone(),
            stream: true,
        }
        .to_json();
        match parse_request(&line).unwrap() {
            Request::Submit { job: back, stream } => {
                assert_eq!(back, job);
                assert!(stream);
            }
            other => panic!("parsed {other:?}"),
        }
    }

    #[test]
    fn defaults_apply_on_parse() {
        let r = parse_request(
            "{\"op\":\"submit\",\"job\":{\"benches\":[\"gzip\"],\"specs\":[\"quick\"]}}",
        )
        .unwrap();
        match r {
            Request::Submit { job, stream } => {
                assert_eq!(job.scale, 1.0);
                assert_eq!(job.priority, 0);
                assert!(job.configs.is_empty());
                assert!(stream, "stream defaults on");
            }
            other => panic!("parsed {other:?}"),
        }
    }

    #[test]
    fn simple_ops_round_trip() {
        for r in [
            Request::Cancel { id: 7 },
            Request::Status { id: None },
            Request::Status { id: Some(3) },
            Request::Ping,
            Request::Shutdown,
        ] {
            assert_eq!(parse_request(&r.to_json()).unwrap(), r);
        }
    }

    #[test]
    fn malformed_requests_are_rejected() {
        assert!(parse_request("not json").is_err());
        assert!(parse_request("{\"op\":\"warp\"}").is_err());
        assert!(parse_request("{\"op\":\"cancel\"}").is_err());
        assert!(parse_request("{\"op\":\"submit\"}").is_err());
    }

    #[test]
    fn control_lines_are_distinguishable_from_records() {
        let ctl = Json::parse(&ack_line(1, 2)).unwrap();
        assert!(is_control(&ctl));
        let rec = Json::parse("{\"v\":1,\"bench\":\"gzip\"}").unwrap();
        assert!(!is_control(&rec));
    }
}
