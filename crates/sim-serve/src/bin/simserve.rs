//! `simserve` — the long-running sweep daemon.
//!
//! ```text
//! simserve [--addr HOST:PORT] [--jobs N] [--active N] [--queue N]
//!          [--drain-timeout SECS] [--store DIR]
//! ```
//!
//! Listens for `simctl` jobs (see `crates/sim-serve/src/proto.rs` for the
//! wire reference), executes them on the shared worker budget, dedupes
//! against `--store`, and streams schema-v1 ledger records back. SIGINT /
//! SIGTERM (or the wire `shutdown` op) drain in-flight jobs — cancelling
//! them after `--drain-timeout` — then flush the store and all ledgers.

use sim_serve::{proto, Server, ServerConfig};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: simserve [--addr HOST:PORT] [--jobs N] [--active N] [--queue N] \
         [--drain-timeout SECS] [--store DIR]"
    );
    std::process::exit(2);
}

fn main() {
    let mut cfg = ServerConfig::default();
    if let Some(addr) = sim_obs::env_val::<String>("SIM_SERVE_ADDR") {
        cfg.addr = addr;
    }
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut val = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
        };
        match arg.as_str() {
            "--addr" => cfg.addr = val("--addr"),
            "--jobs" => cfg.jobs = val("--jobs").parse().expect("--jobs N"),
            "--active" => cfg.active = val("--active").parse().expect("--active N"),
            "--queue" => cfg.queue_cap = val("--queue").parse().expect("--queue N"),
            "--drain-timeout" => {
                cfg.drain_timeout = Duration::from_secs(
                    val("--drain-timeout")
                        .parse()
                        .expect("--drain-timeout SECS"),
                )
            }
            "--store" => cfg.store = Some(val("--store").into()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage();
            }
        }
    }
    if cfg.addr == proto::DEFAULT_ADDR {
        // Make the default visible; explicit addresses echo below anyway.
        eprintln!("simserve: no --addr given, using {}", cfg.addr);
    }
    let server = Server::bind(cfg.clone()).unwrap_or_else(|e| {
        eprintln!("simserve: cannot bind {}: {e}", cfg.addr);
        std::process::exit(1);
    });
    let addr = server.local_addr().expect("bound listener has an address");
    eprintln!(
        "simserve: listening on {addr} (jobs={}, active={}, queue={}, store={})",
        if cfg.jobs == 0 {
            sim_exec::jobs()
        } else {
            cfg.jobs
        },
        cfg.active,
        cfg.queue_cap,
        cfg.store
            .as_deref()
            .map(|p| p.display().to_string())
            .unwrap_or_else(|| "none".to_string()),
    );
    if let Err(e) = server.run() {
        eprintln!("simserve: server error: {e}");
        std::process::exit(1);
    }
    eprintln!("simserve: drained; ledger and store flushed");
}
