//! `simctl` — submit and manage jobs on a running `simserve` daemon.
//!
//! ```text
//! simctl [--addr HOST:PORT] ping
//! simctl [--addr HOST:PORT] status [ID]
//! simctl [--addr HOST:PORT] cancel ID
//! simctl [--addr HOST:PORT] shutdown
//! simctl [--addr HOST:PORT] submit --bench LIST --spec S [--spec S]...
//!        [--config C]... [--scale F] [--priority N] [--out FILE]
//! simctl run --bench LIST --spec S [--spec S]... [--config C]...
//!        [--scale F] --trace-out FILE
//! ```
//!
//! `submit` streams the job's schema-v1 ledger records to stdout (or
//! `--out FILE`) — pipe them straight into `simreport` — while control
//! lines (ack, progress, the final summary) go to stderr. Exit status: 0
//! when the job completes, 3 when it was cancelled or failed, 1 on
//! connection or protocol errors, 2 on usage errors.
//!
//! `run` executes the identical job *offline* — no daemon, same plan
//! expansion, records written through the standard `--trace-out` ledger
//! sink. `simreport --canon` of an offline ledger and of a daemon-streamed
//! ledger for the same job is byte-identical; the CI `service` job holds
//! the daemon to exactly that.

use sim_serve::{proto, Client, JobDesc};
use std::io::Write;

fn usage() -> ! {
    eprintln!(
        "usage: simctl [--addr HOST:PORT] <ping|status [ID]|cancel ID|shutdown|submit ...>\n\
         \x20      simctl run --bench LIST --spec S [--spec S]... --trace-out FILE\n\
         submit flags: --bench LIST --spec S [--spec S]... [--config C]... \
         [--scale F] [--priority N] [--out FILE]\n\
         run flags: same job flags, plus --trace-out FILE (offline, no daemon)"
    );
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("simctl: {msg}");
    std::process::exit(1);
}

fn main() {
    let mut addr = sim_obs::env_val::<String>("SIM_SERVE_ADDR")
        .unwrap_or_else(|| proto::DEFAULT_ADDR.to_string());
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--addr") {
        if args.len() < 2 {
            usage();
        }
        addr = args[1].clone();
        args.drain(..2);
    }
    let Some(cmd) = args.first().cloned() else {
        usage();
    };
    let rest = &args[1..];

    // `run` executes offline — no daemon, no connection.
    if cmd == "run" {
        run_offline(rest);
    }

    let mut client =
        Client::connect(&addr).unwrap_or_else(|e| fail(&format!("cannot connect to {addr}: {e}")));

    match cmd.as_str() {
        "ping" => {
            client.ping().unwrap_or_else(|e| fail(&e));
            eprintln!("simctl: {addr} is alive");
        }
        "status" => {
            let id = rest.first().map(|s| s.parse().unwrap_or_else(|_| usage()));
            let line = client.status(id).unwrap_or_else(|e| fail(&e));
            println!("{line}");
        }
        "cancel" => {
            let id = rest
                .first()
                .and_then(|s| s.parse().ok())
                .unwrap_or_else(|| usage());
            let line = client.cancel(id).unwrap_or_else(|e| fail(&e));
            eprintln!("simctl: {line}");
        }
        "shutdown" => {
            client.shutdown().unwrap_or_else(|e| fail(&e));
            eprintln!("simctl: shutdown requested");
        }
        "submit" => submit(&mut client, rest),
        _ => usage(),
    }
}

/// Parse the shared job flags; `out_flag` names the output-file flag the
/// subcommand takes (`--out` for submit, `--trace-out` for run).
fn parse_job(args: &[String], out_flag: &str) -> (JobDesc, Option<String>) {
    let mut job = JobDesc::default();
    let mut out: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut val = || {
            it.next()
                .unwrap_or_else(|| {
                    eprintln!("simctl: {arg} needs a value");
                    std::process::exit(2);
                })
                .clone()
        };
        match arg.as_str() {
            "--bench" => job.benches.extend(val().split(',').map(str::to_string)),
            "--spec" => job.specs.push(val()),
            "--config" => job.configs.push(val()),
            "--scale" => job.scale = val().parse().unwrap_or_else(|_| usage()),
            "--priority" => job.priority = val().parse().unwrap_or_else(|_| usage()),
            flag if flag == out_flag => out = Some(val()),
            _ => usage(),
        }
    }
    if job.benches.is_empty() || job.specs.is_empty() {
        usage();
    }
    (job, out)
}

/// Execute the job locally: the exact plan the daemon would build, run
/// through the standard ledger sink. The resulting `--trace-out` file is
/// the offline comparator for a daemon-streamed ledger (`simreport
/// --canon` of both is byte-identical).
fn run_offline(args: &[String]) -> ! {
    let (job, out) = parse_job(args, "--trace-out");
    let Some(path) = out else {
        eprintln!("simctl: run needs --trace-out FILE");
        std::process::exit(2);
    };
    let plan = techniques::jobs::JobPlan::build(&job.benches, job.scale, &job.specs, &job.configs)
        .unwrap_or_else(|e| fail(&e));
    sim_obs::trace::set_enabled(true);
    sim_obs::ledger::set_sink(&path)
        .unwrap_or_else(|e| fail(&format!("cannot open --trace-out sink {path:?}: {e}")));
    let idxs: Vec<usize> = (0..plan.len()).collect();
    let outcomes = sim_exec::par_map(&idxs, |&k| plan.run(k).is_some());
    let na = outcomes.iter().filter(|ran| !**ran).count();
    sim_obs::ledger::flush().unwrap_or_else(|e| fail(&format!("ledger flush: {e}")));
    eprintln!(
        "simctl: ran {} runs offline ({na} N/A) -> {path}",
        plan.len()
    );
    std::process::exit(0);
}

fn submit(client: &mut Client, args: &[String]) -> ! {
    let (job, out) = parse_job(args, "--out");

    let mut sink: Box<dyn Write> = match &out {
        Some(path) => Box::new(
            std::fs::File::create(path)
                .unwrap_or_else(|e| fail(&format!("cannot create {path}: {e}"))),
        ),
        None => Box::new(std::io::stdout()),
    };
    let outcome = client
        .submit_streaming(&job, |record| {
            writeln!(sink, "{record}").unwrap_or_else(|e| fail(&format!("write error: {e}")));
        })
        .unwrap_or_else(|e| fail(&e));
    sink.flush()
        .unwrap_or_else(|e| fail(&format!("flush error: {e}")));
    eprintln!("{}", outcome.done_line);
    eprintln!(
        "simctl: job {} {}: {} records ({} store hits) of {} runs",
        outcome.id, outcome.state, outcome.records, outcome.store_hits, outcome.runs
    );
    std::process::exit(if outcome.state == "done" { 0 } else { 3 });
}
