//! Dependency-free SIGINT/SIGTERM handling (std links libc on every
//! supported platform, so the C `signal` entry point is already there).
//!
//! The handler does the only async-signal-safe thing possible: it sets a
//! process-wide [`AtomicBool`]. Two consumers poll it:
//!
//! - the `simserve` accept/drain loop ([`crate::server`]), which turns the
//!   flag into a graceful shutdown — stop admitting, drain or cancel
//!   in-flight jobs, flush the store and every ledger;
//! - the harness *flush guard* ([`install_flush_guard`]): a watcher thread
//!   the long fig harnesses start so a ctrl-c mid-sweep still flushes the
//!   `--trace-out` ledger and the `--store` write-behind queue before the
//!   process exits with the conventional 130.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Once;
use std::time::Duration;

static SHUTDOWN: AtomicBool = AtomicBool::new(false);
static INSTALL: Once = Once::new();
static GUARD: Once = Once::new();

#[cfg(unix)]
mod sys {
    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_sig: i32) {
        super::SHUTDOWN.store(true, std::sync::atomic::Ordering::SeqCst);
    }

    pub fn install() {
        let handler = on_signal as extern "C" fn(i32) as usize;
        unsafe {
            signal(SIGINT, handler);
            signal(SIGTERM, handler);
        }
    }
}

#[cfg(not(unix))]
mod sys {
    pub fn install() {}
}

/// Install the SIGINT/SIGTERM handlers (idempotent) and return the flag
/// they set. Poll it; never block on it.
pub fn shutdown_flag() -> &'static AtomicBool {
    INSTALL.call_once(sys::install);
    &SHUTDOWN
}

/// Whether a shutdown signal has arrived (installs handlers on first use).
pub fn shutdown_requested() -> bool {
    shutdown_flag().load(Ordering::SeqCst)
}

/// Request shutdown from inside the process (the wire `shutdown` op takes
/// the same path as SIGTERM).
pub fn request_shutdown() {
    shutdown_flag().store(true, Ordering::SeqCst);
}

/// Arm the harness flush guard (idempotent): on SIGINT/SIGTERM a watcher
/// thread flushes the run ledger and the persistent store, notes it on
/// stderr, and exits 130. Long `--trace-out`/`--store` runs install this
/// so an interrupted sweep keeps every record and artifact completed so
/// far instead of dropping the buffered tail.
pub fn install_flush_guard() {
    GUARD.call_once(|| {
        shutdown_flag();
        std::thread::Builder::new()
            .name("sim-flush-guard".to_string())
            .spawn(|| loop {
                if shutdown_requested() {
                    let _ = sim_obs::ledger::flush();
                    if let Some(store) = sim_store::global() {
                        let _ = store.flush();
                    }
                    eprintln!("interrupted: run ledger and store flushed");
                    std::process::exit(130);
                }
                std::thread::sleep(Duration::from_millis(100));
            })
            .expect("flush-guard thread spawns");
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_installs_and_round_trips() {
        assert!(!shutdown_requested());
        request_shutdown();
        assert!(shutdown_requested());
        shutdown_flag().store(false, Ordering::SeqCst);
        assert!(!shutdown_requested());
    }
}
