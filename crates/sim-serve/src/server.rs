//! The daemon: TCP accept loop, scheduler threads, and the per-job driver.
//!
//! ## Scheduling and budget donation
//!
//! The server owns one global `--jobs` worker budget ([`sim_exec::jobs`]).
//! Up to `active` jobs run concurrently, each on its own scheduler thread;
//! a job's driver executes its plan in *chunks* through
//! [`sim_exec::with_budget`], capping each chunk's fan-out at
//! `jobs / running_jobs` (at least 1). The share is recomputed at every
//! chunk boundary, so when a job finishes, the survivors pick up its
//! capacity at their next chunk — donation without work stealing.
//!
//! ## Per-job observability
//!
//! Each driver installs a fresh [`sim_obs::ledger::JobSink`] that the pool
//! propagates to its workers: records accumulate per job, get drained at
//! chunk boundaries (run-key sorted within each batch), and stream to the
//! submitting client. The daemon never calls `techniques::cache::clear_all`
//! or resets any process-global counter mid-flight — the process-wide
//! reuse tiers (run cache, checkpoints, store) are shared *read-mostly*
//! state whose results are deterministic, so concurrent jobs can only make
//! each other faster, never different.
//!
//! ## Chunk boundaries
//!
//! Cancellation (client `cancel`, or shutdown past `--drain-timeout`) is
//! honored between chunks: completed runs are already streamed and written
//! through to the store, unstarted runs never begin, and the store is left
//! consistent (`simstore verify` passes).

use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::proto::{self, Request};
use crate::queue::{Event, Job, Queue, Summary};
use crate::signal;

/// Daemon configuration (flag defaults in `simserve --help`).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address; port 0 picks a free port (printed at startup).
    pub addr: String,
    /// Global worker budget; 0 inherits `SIM_JOBS` / hardware default.
    pub jobs: usize,
    /// Concurrent jobs (scheduler threads).
    pub active: usize,
    /// Bounded admission-queue capacity.
    pub queue_cap: usize,
    /// How long shutdown waits for in-flight jobs before cancelling them.
    pub drain_timeout: Duration,
    /// Persistent artifact store directory (`--store`).
    pub store: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: proto::DEFAULT_ADDR.to_string(),
            jobs: 0,
            active: 2,
            queue_cap: 64,
            drain_timeout: Duration::from_secs(30),
            store: None,
        }
    }
}

/// A bound, not-yet-running daemon (see [`Server::run`]).
pub struct Server {
    listener: TcpListener,
    queue: Arc<Queue>,
    cfg: ServerConfig,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    /// Bind the listener and install process-wide settings: the store,
    /// the `--jobs` budget, and span tracing (run records need run scopes
    /// and reuse provenance).
    pub fn bind(cfg: ServerConfig) -> io::Result<Server> {
        if let Some(dir) = &cfg.store {
            sim_store::install_global(dir)
                .map_err(|e| io::Error::new(e.kind(), format!("store {dir:?}: {e}")))?;
        }
        if cfg.jobs > 0 {
            sim_exec::set_jobs(cfg.jobs);
        }
        sim_obs::trace::set_enabled(true);
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        Ok(Server {
            listener,
            queue: Queue::new(cfg.queue_cap),
            cfg,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The admission queue (tests drive it directly).
    pub fn queue(&self) -> Arc<Queue> {
        Arc::clone(&self.queue)
    }

    /// A handle that makes [`Server::run`] return (the wire `shutdown` op
    /// and the tests use this; SIGTERM/SIGINT work without it).
    pub fn shutdown_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.shutdown)
    }

    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || signal::shutdown_requested()
    }

    /// Serve until shutdown (wire op, handle, or SIGINT/SIGTERM), then
    /// drain: close admission (queued jobs cancel immediately), wait up to
    /// `drain_timeout` for in-flight jobs, cancel stragglers, and flush
    /// the run ledger and the store.
    pub fn run(self) -> io::Result<()> {
        signal::shutdown_flag();
        let running = Arc::new(AtomicUsize::new(0));
        let schedulers: Vec<_> = (0..self.cfg.active.max(1))
            .map(|i| {
                let queue = Arc::clone(&self.queue);
                let running = Arc::clone(&running);
                std::thread::Builder::new()
                    .name(format!("sim-serve-sched-{i}"))
                    .spawn(move || {
                        while let Some(job) = queue.claim() {
                            running.fetch_add(1, Ordering::SeqCst);
                            drive(&job, &running);
                            running.fetch_sub(1, Ordering::SeqCst);
                        }
                    })
                    .expect("scheduler thread spawns")
            })
            .collect();

        while !self.shutting_down() {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let queue = Arc::clone(&self.queue);
                    let shutdown = Arc::clone(&self.shutdown);
                    std::thread::Builder::new()
                        .name("sim-serve-conn".to_string())
                        .spawn(move || {
                            let _ = handle_conn(stream, &queue, &shutdown);
                        })
                        .expect("connection thread spawns");
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(25));
                }
                Err(e) => return Err(e),
            }
        }

        // Drain: no new admissions, queued jobs cancel now, in-flight jobs
        // get drain_timeout to finish before they are cancelled too.
        self.queue.close();
        let deadline = Instant::now() + self.cfg.drain_timeout;
        while running.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(20));
        }
        for job in self.queue.running() {
            job.request_cancel();
        }
        for h in schedulers {
            let _ = h.join();
        }
        let _ = sim_obs::ledger::flush();
        if let Some(store) = sim_store::global() {
            let _ = store.flush();
        }
        Ok(())
    }
}

/// Run items per chunk, as a multiple of the job's worker share: enough to
/// keep every worker busy, small enough that cancellation and donation
/// react within a couple of run items per worker.
const CHUNK_PER_WORKER: usize = 2;

/// Execute one claimed job: chunked fan-out under the job's budget share,
/// records drained and streamed at every chunk boundary.
fn drive(job: &Arc<Job>, running: &AtomicUsize) {
    let start = Instant::now();
    let sink = sim_obs::ledger::JobSink::new();
    let prev = sim_obs::ledger::install_job_sink(Some(sink.clone()));
    let n = job.plan.len();
    let mut summary = Summary {
        state: "done",
        ..Summary::default()
    };
    let mut next = 0;
    while next < n {
        if job.cancel_requested() {
            summary.state = "cancelled";
            break;
        }
        let active = running.load(Ordering::SeqCst).max(1);
        let share = (sim_exec::jobs() / active).max(1);
        let end = (next + share * CHUNK_PER_WORKER).min(n);
        let idxs: Vec<usize> = (next..end).collect();
        let plan = &job.plan;
        let outcomes = sim_exec::with_budget(share, || {
            sim_exec::par_map(&idxs, |&k| plan.run(k).is_some())
        });
        summary.na += outcomes.iter().filter(|ran| !**ran).count() as u64;
        job.done_runs.fetch_add(idxs.len(), Ordering::Relaxed);
        stream_batch(job, &sink, &mut summary);
        next = end;
    }
    sim_obs::ledger::install_job_sink(prev);
    stream_batch(job, &sink, &mut summary);
    summary.wall_ms = start.elapsed().as_millis() as u64;
    job.finish(summary);
}

/// Drain the job sink and forward one batch to the client, folding each
/// record into the job summary (store/cache hits are read off the reuse
/// provenance the runner recorded).
fn stream_batch(job: &Job, sink: &sim_obs::ledger::JobSink, summary: &mut Summary) {
    let recs = sink.drain_sorted();
    if recs.is_empty() {
        return;
    }
    let mut lines = Vec::with_capacity(recs.len());
    for r in &recs {
        summary.records += 1;
        summary.work_units += r.work_units;
        match r.provenance {
            "store-restore" => summary.store_hits += 1,
            "cache" => summary.cache_hits += 1,
            _ => summary.computed += 1,
        }
        lines.push(r.to_json_line());
    }
    job.push_records(lines);
}

fn send(stream: &mut TcpStream, line: &str) -> io::Result<()> {
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()
}

/// The status control line: every known job (or just `id`), in id order.
fn status_line(queue: &Queue, id: Option<u64>) -> String {
    let rows = queue.snapshot();
    let mut line = String::from("{\"serve\":\"status\",\"ok\":true,\"jobs\":[");
    let mut first = true;
    for r in rows {
        if id.is_some_and(|want| want != r.id) {
            continue;
        }
        if !first {
            line.push(',');
        }
        first = false;
        line.push_str(&format!(
            "{{\"id\":{},\"state\":\"{}\",\"priority\":{},\"runs\":{},\"done\":{}}}",
            r.id,
            r.state.name(),
            r.priority,
            r.runs,
            r.done
        ));
    }
    line.push_str("]}");
    line
}

/// Serve one client connection until it closes (or a write fails — a gone
/// client never cancels its job; results still land in the store).
fn handle_conn(mut stream: TcpStream, queue: &Queue, shutdown: &AtomicBool) -> io::Result<()> {
    stream.set_nonblocking(false)?;
    // Control lines and record batches are small writes; without nodelay,
    // Nagle + delayed ACK stall each round-trip by tens of milliseconds.
    stream.set_nodelay(true)?;
    let reader = BufReader::new(stream.try_clone()?);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        match proto::parse_request(&line) {
            Err(e) => send(&mut stream, &proto::error_line(&e))?,
            Ok(Request::Ping) => send(&mut stream, &proto::pong_line())?,
            Ok(Request::Shutdown) => {
                send(&mut stream, &proto::ok_line())?;
                shutdown.store(true, Ordering::SeqCst);
            }
            Ok(Request::Cancel { id }) => match queue.cancel(id) {
                Ok(detail) => send(
                    &mut stream,
                    &format!(
                        "{{\"serve\":\"ok\",\"ok\":true,\"detail\":\"{}\"}}",
                        sim_obs::json::escape(detail)
                    ),
                )?,
                Err(e) => send(&mut stream, &proto::error_line(&e))?,
            },
            Ok(Request::Status { id }) => send(&mut stream, &status_line(queue, id))?,
            Ok(Request::Submit { job, stream: want }) => match queue.submit(job) {
                Err(e) => send(&mut stream, &proto::error_line(&e))?,
                Ok(job) => {
                    send(&mut stream, &proto::ack_line(job.id, job.plan.len()))?;
                    if want {
                        loop {
                            match job.next_event(Duration::from_millis(250)) {
                                Some(Event::Records(lines)) => {
                                    for l in &lines {
                                        send(&mut stream, l)?;
                                    }
                                }
                                Some(Event::Finished(summary)) => {
                                    send(&mut stream, &summary.done_line(job.id))?;
                                    break;
                                }
                                None => {}
                            }
                        }
                    }
                }
            },
        }
    }
    Ok(())
}
