//! # sim-serve
//!
//! The serving boundary of the simulation stack: a long-running sweep
//! daemon (`simserve`) and its client (`simctl`).
//!
//! Every layer beneath this crate is a library — `sim_exec`'s work pool,
//! the `techniques` runner with its reuse tiers, the `sim_store` artifact
//! cache, the `sim_obs` run ledger. This crate puts a wire in front of
//! them: experiment *jobs* (bench set × technique specs × config sweep at
//! a stream scale) arrive over a line-delimited JSON protocol on TCP
//! ([`proto`]), are admitted through a bounded priority queue with
//! cancellation ([`queue`]), execute on the shared `--jobs` worker budget
//! with capacity donated between concurrent jobs
//! ([`sim_exec::with_budget`]), dedupe against the persistent store
//! (store hits short-circuit the simulation but still report the full
//! modeled `Cost`), and stream results back as schema-v1 ledger records —
//! the exact JSONL `simreport` already consumes ([`server`]).
//!
//! Per-job isolation: each job's driver installs a
//! [`sim_obs::ledger::JobSink`], which the pool propagates to its
//! workers, so concurrent jobs never see each other's records and the
//! daemon never resets process-global observability state mid-flight.
//!
//! [`signal`] provides the dependency-free SIGINT/SIGTERM hook behind
//! graceful shutdown (`simserve` drains in-flight jobs, then flushes the
//! store and every ledger) and the flush-on-ctrl-c guard the long fig
//! harnesses install.

#![warn(missing_docs)]

pub mod client;
pub mod proto;
pub mod queue;
pub mod server;
pub mod signal;

pub use client::Client;
pub use proto::JobDesc;
pub use server::{Server, ServerConfig};
