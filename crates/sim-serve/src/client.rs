//! The client side of the wire protocol: what `simctl` (and the tests,
//! and the `simbench` serve probes) speak.

use std::io::{self, BufRead, BufReader, Write};
use std::net::TcpStream;

use crate::proto::{self, JobDesc, Request};
use sim_obs::json::Json;

/// What a streamed submit produced, beyond the records themselves.
#[derive(Debug, Clone)]
pub struct SubmitOutcome {
    /// The job id the daemon assigned.
    pub id: u64,
    /// Planned run items (from the ack).
    pub runs: u64,
    /// The final `{"serve":"done",...}` control line, verbatim.
    pub done_line: String,
    /// Terminal state (`done` / `cancelled` / `failed`).
    pub state: String,
    /// Records streamed.
    pub records: u64,
    /// Records served from the persistent store.
    pub store_hits: u64,
}

/// One connection to a `simserve` daemon.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    /// Connect to `addr` (`host:port`).
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        // Line-oriented request/response: Nagle + delayed ACK would add
        // tens of milliseconds per exchange.
        stream.set_nodelay(true)?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    fn send(&mut self, req: &Request) -> io::Result<()> {
        self.writer.write_all(req.to_json().as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()
    }

    fn read_line(&mut self) -> Result<String, String> {
        let mut line = String::new();
        match self.reader.read_line(&mut line) {
            Ok(0) => Err("daemon closed the connection".to_string()),
            Ok(_) => Ok(line.trim_end().to_string()),
            Err(e) => Err(format!("read error: {e}")),
        }
    }

    /// Send one request and return the single control line it elicits.
    /// Errors if the daemon answers `{"serve":"error",...}`.
    pub fn roundtrip(&mut self, req: &Request) -> Result<String, String> {
        self.send(req).map_err(|e| format!("send error: {e}"))?;
        let line = self.read_line()?;
        let j = Json::parse(&line).map_err(|e| format!("bad response: {e}"))?;
        if j.get("ok") == Some(&Json::Bool(false)) {
            let msg = j
                .get("error")
                .and_then(Json::as_str)
                .unwrap_or("unknown error");
            return Err(msg.to_string());
        }
        Ok(line)
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), String> {
        self.roundtrip(&Request::Ping).map(|_| ())
    }

    /// Cancel job `id`; returns the daemon's detail message line.
    pub fn cancel(&mut self, id: u64) -> Result<String, String> {
        self.roundtrip(&Request::Cancel { id })
    }

    /// Status control line (all jobs, or one).
    pub fn status(&mut self, id: Option<u64>) -> Result<String, String> {
        self.roundtrip(&Request::Status { id })
    }

    /// Ask the daemon to shut down gracefully.
    pub fn shutdown(&mut self) -> Result<(), String> {
        self.roundtrip(&Request::Shutdown).map(|_| ())
    }

    /// Submit `job` and stream its records: `on_record` sees every ledger
    /// line verbatim, in arrival order. Blocks until the job finishes.
    pub fn submit_streaming(
        &mut self,
        job: &JobDesc,
        mut on_record: impl FnMut(&str),
    ) -> Result<SubmitOutcome, String> {
        let ack_line = self.roundtrip(&Request::Submit {
            job: job.clone(),
            stream: true,
        })?;
        let ack = Json::parse(&ack_line).map_err(|e| format!("bad ack: {e}"))?;
        let id = ack
            .get("id")
            .and_then(Json::as_u64)
            .ok_or("ack without id")?;
        let runs = ack.get("runs").and_then(Json::as_u64).unwrap_or(0);
        loop {
            let line = self.read_line()?;
            let j = Json::parse(&line).map_err(|e| format!("bad stream line: {e}"))?;
            if !proto::is_control(&j) {
                on_record(&line);
                continue;
            }
            match j.get("serve").and_then(Json::as_str) {
                Some("done") => {
                    let get = |key: &str| j.get(key).and_then(Json::as_u64).unwrap_or(0);
                    return Ok(SubmitOutcome {
                        id,
                        runs,
                        state: j
                            .get("state")
                            .and_then(Json::as_str)
                            .unwrap_or("unknown")
                            .to_string(),
                        records: get("records"),
                        store_hits: get("store_hits"),
                        done_line: line,
                    });
                }
                Some("error") => {
                    return Err(j
                        .get("error")
                        .and_then(Json::as_str)
                        .unwrap_or("unknown error")
                        .to_string())
                }
                other => return Err(format!("unexpected control line {other:?} mid-stream")),
            }
        }
    }
}
