//! The admission queue: bounded, priority-ordered, cancellable.
//!
//! [`Queue::submit`] validates a job (the plan expansion catches unknown
//! benches/specs/configs before admission), enforces the capacity bound
//! (`queue full` is an error the client sees, not silent backpressure),
//! and parks the job pending. Scheduler threads [`Queue::claim`] jobs in
//! priority order (higher first, ties in submit order); each claimed job
//! is driven by [`crate::server`]. Every job carries its own event stream
//! — batches of serialized ledger records, then one terminal [`Summary`] —
//! that the submitting connection drains to the client.
//!
//! Cancellation is two-phase by design: a *queued* job is removed before
//! it ever starts; a *running* job has its cancel flag set and stops at
//! the next chunk boundary (the "interval boundary" of the service layer),
//! leaving the store consistent — completed runs were already written
//! through, the rest were never started.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crate::proto::JobDesc;
use techniques::jobs::JobPlan;

/// A job's lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Admitted, waiting for a scheduler slot.
    Queued,
    /// Claimed by a scheduler thread and executing.
    Running,
    /// Every run item finished.
    Done,
    /// Cancelled (before start, at a chunk boundary, or by shutdown).
    Cancelled,
    /// The driver failed (plan panic or I/O loss).
    Failed,
}

impl JobState {
    /// Wire name of the state.
    pub fn name(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Cancelled => "cancelled",
            JobState::Failed => "failed",
        }
    }

    /// Whether the job can make no further progress.
    pub fn terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Cancelled | JobState::Failed
        )
    }
}

/// Terminal accounting for one job, derived from the records it streamed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Summary {
    /// Terminal state name (`done` / `cancelled` / `failed`).
    pub state: &'static str,
    /// Ledger records streamed.
    pub records: u64,
    /// Records served from the persistent store (`store-restore`).
    pub store_hits: u64,
    /// Records served from the in-memory run cache (`cache`).
    pub cache_hits: u64,
    /// Records actually simulated this time (everything else).
    pub computed: u64,
    /// Run items that were Table 2 N/A cells (no record).
    pub na: u64,
    /// Total modeled cost across records, in work units — store and cache
    /// hits charge their full stored `Cost`, exactly like offline runs.
    pub work_units: f64,
    /// Wall milliseconds from claim to finish.
    pub wall_ms: u64,
}

impl Summary {
    /// The `{"serve":"done",...}` control line for job `id`.
    pub fn done_line(&self, id: u64) -> String {
        format!(
            "{{\"serve\":\"done\",\"ok\":{},\"id\":{id},\"state\":\"{}\",\"records\":{},\
             \"store_hits\":{},\"cache_hits\":{},\"computed\":{},\"na\":{},\
             \"work_units\":{},\"wall_ms\":{}}}",
            self.state == "done",
            self.state,
            self.records,
            self.store_hits,
            self.cache_hits,
            self.computed,
            self.na,
            sim_obs::json::num(self.work_units),
            self.wall_ms,
        )
    }
}

/// One item on a job's event stream.
#[derive(Debug, Clone)]
pub enum Event {
    /// A batch of serialized ledger record lines, run-key sorted within
    /// the batch.
    Records(Vec<String>),
    /// The job finished; no further events follow.
    Finished(Summary),
}

/// An admitted job: its description, expanded plan, and event stream.
pub struct Job {
    /// Daemon-unique id (submit order).
    pub id: u64,
    /// The wire description it was built from.
    pub desc: JobDesc,
    /// The expanded run plan.
    pub plan: JobPlan,
    /// Run items completed so far (progress reporting).
    pub done_runs: AtomicUsize,
    cancel: AtomicBool,
    state: Mutex<JobState>,
    events: Mutex<VecDeque<Event>>,
    events_cv: Condvar,
}

impl std::fmt::Debug for Job {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Job")
            .field("id", &self.id)
            .field("state", &self.state())
            .field("runs", &self.plan.len())
            .finish_non_exhaustive()
    }
}

impl Job {
    fn new(id: u64, desc: JobDesc, plan: JobPlan) -> Arc<Job> {
        Arc::new(Job {
            id,
            desc,
            plan,
            done_runs: AtomicUsize::new(0),
            cancel: AtomicBool::new(false),
            state: Mutex::new(JobState::Queued),
            events: Mutex::new(VecDeque::new()),
            events_cv: Condvar::new(),
        })
    }

    /// Current lifecycle state.
    pub fn state(&self) -> JobState {
        *self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn set_state(&self, s: JobState) {
        *self.state.lock().unwrap_or_else(|e| e.into_inner()) = s;
    }

    /// Ask the driver to stop at the next chunk boundary.
    pub fn request_cancel(&self) {
        self.cancel.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation was requested.
    pub fn cancel_requested(&self) -> bool {
        self.cancel.load(Ordering::SeqCst)
    }

    /// Append a batch of record lines to the event stream.
    pub fn push_records(&self, lines: Vec<String>) {
        if lines.is_empty() {
            return;
        }
        let mut ev = self.events.lock().unwrap_or_else(|e| e.into_inner());
        ev.push_back(Event::Records(lines));
        self.events_cv.notify_all();
    }

    /// Mark the job terminal and append the final event.
    pub fn finish(&self, summary: Summary) {
        let state = match summary.state {
            "done" => JobState::Done,
            "cancelled" => JobState::Cancelled,
            _ => JobState::Failed,
        };
        self.set_state(state);
        let mut ev = self.events.lock().unwrap_or_else(|e| e.into_inner());
        ev.push_back(Event::Finished(summary));
        self.events_cv.notify_all();
    }

    /// Pop the next event, waiting up to `timeout`. `None` on timeout —
    /// poll again (the streaming connection interleaves liveness checks).
    pub fn next_event(&self, timeout: Duration) -> Option<Event> {
        let mut ev = self.events.lock().unwrap_or_else(|e| e.into_inner());
        if ev.is_empty() {
            let (guard, _) = self
                .events_cv
                .wait_timeout(ev, timeout)
                .unwrap_or_else(|e| e.into_inner());
            ev = guard;
        }
        ev.pop_front()
    }
}

/// One row of a status snapshot.
#[derive(Debug, Clone)]
pub struct JobInfo {
    /// Job id.
    pub id: u64,
    /// Lifecycle state.
    pub state: JobState,
    /// Admission priority.
    pub priority: i64,
    /// Total run items.
    pub runs: usize,
    /// Completed run items.
    pub done: usize,
}

struct Inner {
    /// Pending jobs, sorted by (priority desc, id asc).
    pending: Vec<Arc<Job>>,
    /// Every job ever admitted, by id (status and cancel lookups).
    jobs: HashMap<u64, Arc<Job>>,
    next_id: u64,
    closed: bool,
}

/// The bounded admission queue (see module docs).
pub struct Queue {
    inner: Mutex<Inner>,
    cv: Condvar,
    capacity: usize,
}

impl Queue {
    /// A queue admitting at most `capacity` pending jobs.
    pub fn new(capacity: usize) -> Arc<Queue> {
        Arc::new(Queue {
            inner: Mutex::new(Inner {
                pending: Vec::new(),
                jobs: HashMap::new(),
                next_id: 0,
                closed: false,
            }),
            cv: Condvar::new(),
            capacity: capacity.max(1),
        })
    }

    /// Validate and admit a job. Errors: invalid description (bad bench /
    /// spec / config / scale), `queue full`, or a closed (shutting-down)
    /// queue. Plan expansion runs outside the queue lock.
    pub fn submit(&self, desc: JobDesc) -> Result<Arc<Job>, String> {
        let plan = JobPlan::build(&desc.benches, desc.scale, &desc.specs, &desc.configs)?;
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.closed {
            return Err("daemon is shutting down".to_string());
        }
        if inner.pending.len() >= self.capacity {
            return Err("queue full".to_string());
        }
        let id = inner.next_id;
        inner.next_id += 1;
        let job = Job::new(id, desc, plan);
        let pos = inner
            .pending
            .iter()
            .position(|j| j.desc.priority < job.desc.priority)
            .unwrap_or(inner.pending.len());
        inner.pending.insert(pos, Arc::clone(&job));
        inner.jobs.insert(id, Arc::clone(&job));
        self.cv.notify_one();
        Ok(job)
    }

    /// Block until a pending job is available and claim it (it transitions
    /// to `Running`). `None` once the queue is closed and drained — the
    /// scheduler thread's exit signal.
    pub fn claim(&self) -> Option<Arc<Job>> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if !inner.pending.is_empty() {
                let job = inner.pending.remove(0);
                job.set_state(JobState::Running);
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self.cv.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Cancel job `id`. A queued job is removed and finished immediately
    /// (it never starts); a running job gets its flag set and stops at the
    /// next chunk boundary. Terminal jobs are an error.
    pub fn cancel(&self, id: u64) -> Result<&'static str, String> {
        let job = {
            let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            let job = inner
                .jobs
                .get(&id)
                .cloned()
                .ok_or_else(|| format!("no such job {id}"))?;
            if let Some(pos) = inner.pending.iter().position(|j| j.id == id) {
                inner.pending.remove(pos);
                job.request_cancel();
                job.finish(Summary {
                    state: "cancelled",
                    ..Summary::default()
                });
                return Ok("cancelled before start");
            }
            job
        };
        if job.state().terminal() {
            return Err(format!("job {id} already finished"));
        }
        job.request_cancel();
        Ok("cancel requested; stops at the next chunk boundary")
    }

    /// Close admission and cancel every still-pending job (shutdown).
    /// Running jobs are untouched — the server drains or cancels them on
    /// its own timetable.
    pub fn close(&self) {
        let cancelled: Vec<Arc<Job>> = {
            let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
            inner.closed = true;
            std::mem::take(&mut inner.pending)
        };
        for job in cancelled {
            job.request_cancel();
            job.finish(Summary {
                state: "cancelled",
                ..Summary::default()
            });
        }
        self.cv.notify_all();
    }

    /// Look up a job by id.
    pub fn get(&self, id: u64) -> Option<Arc<Job>> {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .jobs
            .get(&id)
            .cloned()
    }

    /// Status rows for every known job, in id order.
    pub fn snapshot(&self) -> Vec<JobInfo> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let mut rows: Vec<JobInfo> = inner
            .jobs
            .values()
            .map(|j| JobInfo {
                id: j.id,
                state: j.state(),
                priority: j.desc.priority,
                runs: j.plan.len(),
                done: j.done_runs.load(Ordering::Relaxed),
            })
            .collect();
        rows.sort_by_key(|r| r.id);
        rows
    }

    /// Ids of jobs currently running (shutdown drain watches these).
    pub fn running(&self) -> Vec<Arc<Job>> {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner
            .jobs
            .values()
            .filter(|j| j.state() == JobState::Running)
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_job(priority: i64) -> JobDesc {
        JobDesc {
            benches: vec!["gzip".into()],
            scale: 0.05,
            specs: vec!["runz:z=5k".into()],
            configs: vec!["table3:1".into()],
            priority,
        }
    }

    #[test]
    fn submit_validates_and_claims_in_priority_order() {
        let q = Queue::new(8);
        let low = q.submit(tiny_job(0)).unwrap();
        let high = q.submit(tiny_job(5)).unwrap();
        let mid = q.submit(tiny_job(3)).unwrap();
        assert!(
            q.submit(JobDesc::default()).map(|j| j.id).is_err(),
            "empty job rejected"
        );
        assert_eq!(q.claim().unwrap().id, high.id);
        assert_eq!(q.claim().unwrap().id, mid.id);
        let last = q.claim().unwrap();
        assert_eq!(last.id, low.id);
        assert_eq!(last.state(), JobState::Running);
    }

    #[test]
    fn capacity_bound_rejects_with_queue_full() {
        let q = Queue::new(2);
        q.submit(tiny_job(0)).unwrap();
        q.submit(tiny_job(0)).unwrap();
        let err = q.submit(tiny_job(0)).map(|j| j.id).unwrap_err();
        assert_eq!(err, "queue full");
        // Claiming frees a slot.
        q.claim().unwrap();
        q.submit(tiny_job(0)).unwrap();
    }

    #[test]
    fn cancelling_a_queued_job_finishes_it_without_running() {
        let q = Queue::new(8);
        let a = q.submit(tiny_job(0)).unwrap();
        let b = q.submit(tiny_job(0)).unwrap();
        assert_eq!(q.cancel(b.id).unwrap(), "cancelled before start");
        assert_eq!(b.state(), JobState::Cancelled);
        match b.next_event(Duration::from_millis(10)).unwrap() {
            Event::Finished(s) => assert_eq!(s.state, "cancelled"),
            other => panic!("unexpected event {other:?}"),
        }
        // Only the surviving job is claimable.
        assert_eq!(q.claim().unwrap().id, a.id);
        assert!(q.cancel(b.id).is_err(), "terminal jobs cannot re-cancel");
        assert!(q.cancel(99).is_err(), "unknown id");
    }

    #[test]
    fn close_cancels_pending_and_unblocks_claim() {
        let q = Queue::new(8);
        let a = q.submit(tiny_job(0)).unwrap();
        q.close();
        assert_eq!(a.state(), JobState::Cancelled);
        assert!(q.claim().is_none(), "closed queue drains to None");
        assert!(q.submit(tiny_job(0)).is_err(), "closed queue rejects");
    }

    #[test]
    fn events_stream_in_order_and_timeout_cleanly() {
        let q = Queue::new(8);
        let job = q.submit(tiny_job(0)).unwrap();
        assert!(job.next_event(Duration::from_millis(5)).is_none());
        job.push_records(vec!["r1".into(), "r2".into()]);
        job.finish(Summary {
            state: "done",
            records: 2,
            ..Summary::default()
        });
        match job.next_event(Duration::from_millis(5)).unwrap() {
            Event::Records(lines) => assert_eq!(lines, vec!["r1", "r2"]),
            other => panic!("unexpected {other:?}"),
        }
        match job.next_event(Duration::from_millis(5)).unwrap() {
            Event::Finished(s) => {
                assert_eq!(s.records, 2);
                assert!(s.done_line(job.id).contains("\"serve\":\"done\""));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(job.state(), JobState::Done);
    }
}
