//! The parallel fan-out must be invisible in the results: every harness
//! reports byte-identical output at any `--jobs` count, and the run cache
//! returns the exact metrics and cost of the first computation.

use experiments::opts::Opts;
use experiments::run_experiment;
use sim_core::SimConfig;
use techniques::runner::{run_technique, PreparedBench};
use techniques::TechniqueSpec;

/// Tiny but non-trivial settings, mirroring the smoke tests.
fn tiny_args(jobs: &str) -> Opts {
    Opts::from_args(["--scale", "0.05", "--bench", "gzip", "--jobs", jobs])
}

/// Both tests touch process-global state (the jobs override and the global
/// run cache), so they must not run concurrently.
fn global_state_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// `fig1` exercises the whole stack (PreparedBench fan, PB-row fan,
/// permutation fan, run cache). Its report must not depend on the job
/// count. The global run cache is cleared between runs so the second run
/// actually recomputes rather than replaying the first run's results.
#[test]
fn fig1_report_is_byte_identical_across_job_counts() {
    let _guard = global_state_lock();
    let serial = run_experiment("fig1", &tiny_args("1"));
    techniques::cache::global().clear();
    let parallel = run_experiment("fig1", &tiny_args("4"));
    assert_eq!(
        serial, parallel,
        "fig1 output must be byte-identical at --jobs 1 and --jobs 4"
    );
    // Leave the process-global override in a neutral state for any test
    // that runs after this one in the same binary.
    sim_exec::set_jobs(1);
}

/// Repeating a (benchmark, config, technique) key must hit the run cache
/// and return the stored metrics and full cost unchanged.
#[test]
fn run_cache_hits_on_repeated_keys() {
    let _guard = global_state_lock();
    let prep = PreparedBench::by_name_scaled("gzip", 0.05).unwrap();
    let cfg = SimConfig::table3(1);
    let spec = TechniqueSpec::RunZ { z: 10_000 };
    let first = run_technique(&spec, &prep, &cfg).unwrap();
    let (_, misses_before) = techniques::cache::global().stats();
    let again = run_technique(&spec, &prep, &cfg).unwrap();
    let (hits_after, misses_after) = techniques::cache::global().stats();
    assert_eq!(first.metrics, again.metrics);
    assert_eq!(first.cost, again.cost, "cached runs still charge full cost");
    assert!(hits_after >= 1, "second run must be a cache hit");
    assert_eq!(misses_before, misses_after, "second run must not miss");
}
