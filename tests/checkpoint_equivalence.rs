//! Golden equivalence tests for the checkpoint library: restoring a
//! fast-forward prefix must be observationally identical to re-executing
//! it — same metrics, same cost, same harness reports, at any job count —
//! while strictly reducing the functionally executed instruction count.

use experiments::opts::Opts;
use experiments::run_experiment;
use sim_core::SimConfig;
use techniques::checkpoint;
use techniques::runner::{run_technique, PreparedBench};
use techniques::TechniqueSpec;

/// Every test here toggles process-global state (the checkpoint enable
/// flag, the run cache, the checkpoint library, the functional-instruction
/// counter, the jobs override), so they must not run concurrently.
fn global_state_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// The golden test: for several FF/WU windows and sampling specs under two
/// machine configurations, a checkpointed run — both the one that
/// populates the library and the one that restores from it — produces the
/// exact `Metrics` and `Cost` of a cold run.
#[test]
fn restored_prefixes_reproduce_cold_runs_exactly() {
    let _guard = global_state_lock();
    let prep = PreparedBench::by_name_scaled("gzip", 0.1).unwrap();
    let specs = [
        // Three FF/WU windows sharing and varying (x, y)...
        TechniqueSpec::FfWuRun {
            x: 20_000,
            y: 5_000,
            z: 4_000,
        },
        TechniqueSpec::FfWuRun {
            x: 20_000,
            y: 5_000,
            z: 8_000,
        },
        TechniqueSpec::FfWuRun {
            x: 40_000,
            y: 2_000,
            z: 4_000,
        },
        // ...plus one of each technique with a reusable prefix.
        TechniqueSpec::FfRun {
            x: 30_000,
            z: 6_000,
        },
        TechniqueSpec::Smarts { u: 1_000, w: 2_000 },
        TechniqueSpec::RandomSample {
            n: 8,
            u: 1_000,
            w: 1_000,
            seed: 7,
        },
    ];
    for cfg_id in [1usize, 2] {
        let cfg = SimConfig::table3(cfg_id);
        for spec in &specs {
            // Cold truth: all reuse off and empty.
            checkpoint::set_enabled(false);
            techniques::cache::clear_all();
            let cold = run_technique(spec, &prep, &cfg).unwrap();

            // Checkpointed, twice: the first run populates the library,
            // the second restores from it. Only the run cache is cleared
            // in between, so the second run really exercises the restore
            // paths rather than replaying a memoized result.
            checkpoint::set_enabled(true);
            techniques::cache::clear_all();
            let populate = run_technique(spec, &prep, &cfg).unwrap();
            techniques::cache::global().clear();
            let restored = run_technique(spec, &prep, &cfg).unwrap();

            for (phase, run) in [("populate", &populate), ("restore", &restored)] {
                assert_eq!(
                    cold.metrics, run.metrics,
                    "{phase} metrics diverged for {spec:?} under config {cfg_id}"
                );
                assert_eq!(
                    cold.cost, run.cost,
                    "{phase} cost diverged for {spec:?} under config {cfg_id}"
                );
            }
        }
    }
    checkpoint::set_enabled(true);
}

/// Checkpointed sweeps stay deterministic under the parallel fan-out:
/// concurrent workers race to populate the library, but whoever wins
/// stores byte-identical state, so results match the serial run exactly.
#[test]
fn checkpointed_sweep_is_deterministic_under_parallel_fanout() {
    let _guard = global_state_lock();
    checkpoint::set_enabled(true);
    let specs: Vec<TechniqueSpec> = (0..6)
        .map(|i| TechniqueSpec::FfWuRun {
            x: 25_000,
            y: 5_000,
            z: 2_000 + 1_000 * i,
        })
        .collect();
    let run_all = |jobs: usize| -> Vec<String> {
        sim_exec::set_jobs(jobs);
        techniques::cache::clear_all();
        let prep = PreparedBench::by_name_scaled("gzip", 0.1).unwrap();
        let cfg = SimConfig::table3(3);
        sim_exec::par_map(&specs, |spec| {
            let r = run_technique(spec, &prep, &cfg).unwrap();
            format!("{:?} {:?}", r.metrics, r.cost)
        })
    };
    let serial = run_all(1);
    let parallel = run_all(4);
    assert_eq!(
        serial, parallel,
        "checkpointed results must not depend on the job count"
    );
    sim_exec::set_jobs(1);
}

/// The acceptance criterion: the Figure 2 and Figure 5 sweeps, run with
/// checkpoints off and then on, must print byte-identical reports while
/// functionally executing strictly fewer instructions (measured by the
/// process-wide counter, which replays and restores do not increment).
#[test]
fn fig_sweeps_save_functional_execution_with_identical_reports() {
    let _guard = global_state_lock();
    let args = ["--scale", "0.05", "--bench", "gzip", "--jobs", "2"];
    let opts_off = Opts::from_args(args.iter().chain(&["--checkpoints", "off"]));
    let opts_on = Opts::from_args(args.iter().chain(&["--checkpoints", "on"]));
    for fig in ["fig2", "fig5"] {
        techniques::cache::clear_all();
        sim_core::checkpoint::reset_functional_insts();
        let cold_report = run_experiment(fig, &opts_off);
        let cold_insts = sim_core::checkpoint::functional_insts();

        techniques::cache::clear_all();
        sim_core::checkpoint::reset_functional_insts();
        let warm_report = run_experiment(fig, &opts_on);
        let warm_insts = sim_core::checkpoint::functional_insts();

        assert_eq!(
            cold_report, warm_report,
            "{fig}: checkpoints must not change the report"
        );
        assert!(
            warm_insts < cold_insts,
            "{fig}: checkpoints must save functional execution \
             ({warm_insts} with vs {cold_insts} without)"
        );
    }
    checkpoint::set_enabled(true);
    sim_exec::set_jobs(1);
}
