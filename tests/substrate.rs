//! Integration tests of the substrate extensions (power model, trace
//! record/replay) against real workloads.

use simtech_repro::sim_core::power::{estimate, PowerConfig};
use simtech_repro::sim_core::trace::{record, TraceReader};
use simtech_repro::sim_core::{SimConfig, Simulator};
use simtech_repro::workloads::{benchmark, InputSet, Interp};

fn small_program(name: &str) -> simtech_repro::workloads::Program {
    benchmark(name)
        .unwrap()
        .program_scaled(InputSet::Reference, 0.03)
        .unwrap()
}

#[test]
fn memory_bound_benchmark_spends_its_energy_in_the_hierarchy() {
    let cfg = SimConfig::table3(2);
    let pc = PowerConfig::default();
    let share = |name: &str| {
        let p = small_program(name);
        let mut sim = Simulator::new(cfg.clone());
        let mut s = Interp::new(&p);
        sim.run_detailed(&mut s, u64::MAX);
        let stats = sim.stats();
        let b = estimate(&pc, &cfg, &stats);
        (b.dram + b.l2 + b.dcache) / b.total()
    };
    let mcf = share("mcf");
    let gzip = share("gzip");
    assert!(
        mcf > gzip,
        "mcf's memory-energy share ({mcf:.2}) must exceed gzip's ({gzip:.2})"
    );
}

#[test]
fn nlp_trades_core_time_for_memory_traffic_energy() {
    // Prefetching reduces cycles (clock energy) but adds DRAM traffic;
    // both effects must be visible in the power breakdown.
    let base_cfg = SimConfig::table3(2);
    let nlp_cfg = base_cfg.clone().with_next_line_prefetch(true);
    let p = small_program("art");
    let pc = PowerConfig::default();

    let run = |cfg: &SimConfig| {
        let mut sim = Simulator::new(cfg.clone());
        let mut s = Interp::new(&p);
        sim.run_detailed(&mut s, u64::MAX);
        let stats = sim.stats();
        (stats.core.cycles, estimate(&pc, cfg, &stats))
    };
    let (base_cycles, base_power) = run(&base_cfg);
    let (nlp_cycles, nlp_power) = run(&nlp_cfg);
    assert!(nlp_cycles < base_cycles, "NLP speeds up art");
    assert!(
        nlp_power.dram > base_power.dram,
        "NLP adds DRAM traffic energy ({} vs {})",
        nlp_power.dram,
        base_power.dram
    );
}

#[test]
fn workload_trace_roundtrips_and_replays_cycle_exact() {
    let p = small_program("gcc");
    let mut buf = Vec::new();
    let mut stream = Interp::new(&p);
    let n = record(&mut stream, &mut buf, u64::MAX).unwrap();
    assert!(n > 50_000, "gcc tiny stream has {n} instructions");
    // Compact: real workloads should be well under 10 bytes/inst.
    assert!(
        (buf.len() as f64 / n as f64) < 10.0,
        "{:.1} bytes/inst",
        buf.len() as f64 / n as f64
    );

    let cfg = SimConfig::table3(1);
    let mut live = Simulator::new(cfg.clone());
    let mut s = Interp::new(&p);
    live.run_detailed(&mut s, u64::MAX);

    let mut replayed = Simulator::new(cfg);
    let mut r = TraceReader::new(&buf[..]).unwrap();
    replayed.run_detailed(&mut r, u64::MAX);

    assert_eq!(live.stats(), replayed.stats());
}

#[test]
fn traced_prefix_matches_interpreter_prefix() {
    let p = small_program("perlbmk");
    let mut buf = Vec::new();
    let mut stream = Interp::new(&p);
    record(&mut stream, &mut buf, 5_000).unwrap();
    let mut reader = TraceReader::new(&buf[..]).unwrap();
    let mut fresh = Interp::new(&p);
    for i in 0..5_000 {
        let a = simtech_repro::sim_core::isa::InstStream::next_inst(&mut reader);
        let b = simtech_repro::sim_core::isa::InstStream::next_inst(&mut fresh);
        assert_eq!(a, b, "divergence at instruction {i}");
    }
}

#[test]
fn energy_per_instruction_is_stable_across_windows() {
    // EPI of the first half and second half of a (single-phase-dominant)
    // benchmark should be within 2x — a sanity bound on the activity model.
    let p = small_program("equake");
    let cfg = SimConfig::table3(2);
    let pc = PowerConfig::default();
    let mut sim = Simulator::new(cfg.clone());
    let mut s = Interp::new(&p);
    let half = p.dynamic_len_estimate / 2;
    sim.run_detailed(&mut s, half);
    let first = sim.stats();
    let epi1 = estimate(&pc, &cfg, &first).energy_per_inst(&first);
    sim.reset_stats();
    sim.run_detailed(&mut s, u64::MAX);
    let second = sim.stats();
    let epi2 = estimate(&pc, &cfg, &second).energy_per_inst(&second);
    let ratio = epi1 / epi2;
    assert!(
        (0.5..2.0).contains(&ratio),
        "EPI unstable across halves: {epi1} vs {epi2}"
    );
}
