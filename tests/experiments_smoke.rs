//! End-to-end smoke tests of the experiment harnesses at miniature scale:
//! every experiment must run and produce a plausible report through the
//! same `run_experiment` entry point the binaries use.

use simtech_repro::characterize;
use simtech_repro::simstats;

// The experiments crate is not re-exported by the umbrella crate (it is a
// binary-oriented crate), so depend on it directly.
use experiments::opts::Opts;
use experiments::run_experiment;

fn tiny_opts() -> Opts {
    Opts::from_args(["--scale", "0.05", "--bench", "gzip"])
}

#[test]
fn tables_render_with_expected_content() {
    let opts = tiny_opts();
    let t1 = run_experiment("table1", &opts);
    assert!(t1.contains("69 permutations"));
    assert!(t1.contains("FF") && t1.contains("SMARTS"));
    let t2 = run_experiment("table2", &opts);
    assert!(t2.contains("vpr-place") && t2.contains("N/A"));
    let t3 = run_experiment("table3", &opts);
    assert!(t3.contains("config #4"));
}

#[test]
fn fig6_runs_at_tiny_scale_for_both_enhancements() {
    let nlp = run_experiment("fig6", &tiny_opts());
    assert!(nlp.contains("next-line prefetching"));
    assert!(nlp.contains("reference speedup"));
    let tc_opts = Opts::from_args(["--scale", "0.05", "--bench", "gzip", "--enhancement", "tc"]);
    let tc = run_experiment("fig6", &tc_opts);
    assert!(tc.contains("trivial computation"));
}

#[test]
fn fig3_and_fig4_run_at_tiny_scale() {
    // fig3/fig4 are pinned to gcc/mcf internally; the scale flag keeps them
    // fast regardless of --bench.
    let opts = tiny_opts();
    let f3 = run_experiment("fig3", &opts);
    assert!(f3.contains("gcc"));
    assert!(f3.contains("speed (% ref)"));
    let f4 = run_experiment("fig4", &opts);
    assert!(f4.contains("mcf"));
}

#[test]
fn fig5_reports_all_families() {
    let out = run_experiment("fig5", &tiny_opts());
    for fam in ["SimPoint", "SMARTS", "Run Z", "FF+Run"] {
        assert!(out.contains(fam), "fig5 missing family {fam}");
    }
    assert!(out.contains("0% to 3%"));
    assert!(out.contains("> 30%"));
}

#[test]
fn profile_and_arch_characterizations_run() {
    let opts = tiny_opts();
    let p = run_experiment("profile_char", &opts);
    assert!(p.contains("BBV chi2"));
    let a = run_experiment("arch_char", &opts);
    assert!(a.contains("mean dist"));
}

#[test]
fn fig7_contains_all_six_techniques() {
    let out = run_experiment("fig7", &tiny_opts());
    for t in [
        "SMARTS",
        "SimPoint",
        "Reduced",
        "Run Z",
        "FF+Run",
        "FF+WU+Run",
    ] {
        assert!(out.contains(t), "fig7 missing {t}");
    }
}

#[test]
fn experiment_names_are_exhaustive_and_runnable_statically() {
    // Every registered experiment name resolves (the cheap ones are run in
    // other tests; this just checks the registry is consistent).
    assert_eq!(experiments::EXPERIMENTS.len(), 15);
    let unique: std::collections::HashSet<_> = experiments::EXPERIMENTS.iter().collect();
    assert_eq!(unique.len(), 15);
}

#[test]
fn decision_tree_is_consistent_with_measured_fig5_style_data() {
    // The Figure 7 accuracy ordering should match an actual quick
    // configuration-dependence measurement on one benchmark: SMARTS's
    // within-3% share >= Run Z's.
    use characterize::configdep::config_dependence;
    use characterize::svat::reference_cpis;
    use simtech_repro::sim_core::SimConfig;
    use simtech_repro::techniques::runner::PreparedBench;
    use simtech_repro::techniques::TechniqueSpec;

    let prep = PreparedBench::by_name_scaled("gzip", 0.1).unwrap();
    let configs = vec![SimConfig::table3(1), SimConfig::table3(2)];
    let refs = reference_cpis(&prep, &configs);
    let smarts = config_dependence(
        &TechniqueSpec::Smarts { u: 1_000, w: 2_000 },
        &prep,
        &configs,
        &refs,
    )
    .unwrap();
    let run_z =
        config_dependence(&TechniqueSpec::RunZ { z: 100_000 }, &prep, &configs, &refs).unwrap();
    assert!(smarts.histogram.pct_within_3() >= run_z.histogram.pct_within_3());

    let rec = characterize::decision::recommend(&[
        characterize::decision::Criterion::ConfigurationIndependence,
    ]);
    assert_eq!(rec, simtech_repro::techniques::TechniqueKind::Smarts);
}

#[test]
fn lenth_flags_real_bottlenecks_on_a_real_workload() {
    // Run a small PB design on mcf and check Lenth's method finds at least
    // one significant (memory-ish) effect.
    use characterize::bottleneck::pb_responses;
    use simstats::pb::{lenth, PbDesign};
    use simtech_repro::sim_core::config::pb as pbcfg;
    use simtech_repro::sim_core::SimConfig;
    use simtech_repro::techniques::runner::PreparedBench;
    use simtech_repro::techniques::TechniqueSpec;

    let d = PbDesign::new(pbcfg::NUM_PARAMETERS);
    let prep = PreparedBench::by_name_scaled("mcf", 0.05).unwrap();
    let responses = pb_responses(
        &TechniqueSpec::RunZ { z: 30_000 },
        &prep,
        &d,
        &SimConfig::default(),
    )
    .unwrap();
    let effects = d.effects(&responses);
    let analysis = lenth(&effects, 2.0);
    let n_sig = analysis.significant.iter().filter(|&&s| s).count();
    assert!(
        n_sig >= 1,
        "mcf must have at least one significant bottleneck"
    );
    assert!(
        n_sig < 20,
        "not everything can be significant (got {n_sig})"
    );
    // The top-ranked effect must be among the significant ones.
    let top = effects
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.abs().partial_cmp(&b.1.abs()).unwrap())
        .map(|(i, _)| i)
        .unwrap();
    assert!(analysis.significant[top]);
}
