//! The observability layer must be invisible in the results: report output
//! (stdout) is byte-identical with tracing off and on, and the run ledger
//! carries the same record multiset at any `--jobs` count (modulo the
//! fields that legitimately measure this machine: wall time, span timings,
//! and reuse provenance, which depend on which worker got there first).

use std::path::PathBuf;

use experiments::opts::Opts;
use experiments::run_experiment;
use sim_obs::json::Json;
use sim_obs::ledger::REQUIRED_KEYS;

/// Both tests touch process-global state (trace enable flag, ledger sink,
/// jobs override, run cache), so they must not run concurrently.
fn global_state_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn tmp(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("simtech_obs_{}_{name}", std::process::id()))
}

/// Restore the neutral observability state (and jobs override) even when
/// an assertion in the middle of a test would otherwise leave tracing on.
struct Neutral;
impl Drop for Neutral {
    fn drop(&mut self) {
        sim_obs::trace::set_enabled(false);
        let _ = sim_obs::ledger::clear_sink();
        sim_exec::set_jobs(1);
    }
}

fn tiny_args(extra: &[&str]) -> Opts {
    let mut args = vec!["--scale", "0.05", "--bench", "gzip", "--jobs", "2"];
    args.extend_from_slice(extra);
    Opts::from_args(args)
}

/// The deterministic projection of one ledger line: everything except
/// wall time, span timings, and reuse provenance. Floats are compared by
/// their shortest-round-trip serialization, which is exact.
fn projection(line: &str) -> String {
    let j = Json::parse(line).unwrap_or_else(|e| panic!("bad ledger line {line:?}: {e}"));
    let s = |k: &str| j.get(k).and_then(Json::as_str).unwrap_or("?").to_string();
    let n = |obj: &Json, k: &str| obj.get(k).and_then(Json::as_f64).unwrap_or(f64::NAN);
    let cost = j.get("cost").expect("cost object");
    format!(
        "{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}",
        s("bench"),
        s("technique"),
        s("spec"),
        s("cfg"),
        n(&j, "scale"),
        n(&j, "cpi"),
        n(&j, "measured_insts"),
        n(cost, "detailed"),
        n(cost, "warmed"),
        n(cost, "skipped"),
        n(cost, "profiled"),
        n(cost, "work_units"),
    )
}

/// Read a ledger file into its sorted deterministic projections.
fn projections(path: &PathBuf) -> Vec<String> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("read ledger {}: {e}", path.display()));
    let mut out: Vec<String> = text
        .lines()
        .filter(|l| !l.trim().is_empty() && !is_footer(l))
        .map(projection)
        .collect();
    out.sort();
    out
}

/// Whether a ledger line is a pipeline-metrics footer (cumulative machine
/// measurements, outside the deterministic record multiset).
fn is_footer(line: &str) -> bool {
    Json::parse(line).is_ok_and(|j| j.get("meta").is_some())
}

/// Turning tracing on (ledger sink + metrics) must not change one byte of
/// the fig2 report, and every emitted ledger line must carry the full
/// versioned schema.
#[test]
fn fig2_report_is_byte_identical_with_tracing_on() {
    let _guard = global_state_lock();
    let _neutral = Neutral;
    let ledger = tmp("fig2.jsonl");
    let _ = std::fs::remove_file(&ledger);

    sim_obs::trace::set_enabled(false);
    let off = run_experiment("fig2", &tiny_args(&[]));

    techniques::cache::global().clear();
    let ledger_s = ledger.to_string_lossy().into_owned();
    let on = run_experiment("fig2", &tiny_args(&["--metrics", "--trace-out", &ledger_s]));
    assert_eq!(
        off, on,
        "fig2 report must be byte-identical with tracing off and on"
    );

    let text = std::fs::read_to_string(&ledger).expect("ledger was written");
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    assert!(!lines.is_empty(), "traced run must emit ledger records");
    let mut footers = 0;
    for line in &lines {
        let j = Json::parse(line).expect("ledger line parses");
        if j.get("meta").is_some() {
            footers += 1;
            let m = j.get("metrics").expect("footer carries a metrics object");
            assert!(
                m.get("pipeline.batch_refills").is_some(),
                "footer surfaces the pipeline hot-loop counters: {line}"
            );
            continue;
        }
        for key in REQUIRED_KEYS {
            assert!(j.get(key).is_some(), "ledger line missing {key:?}: {line}");
        }
    }
    assert!(
        footers >= 1,
        "a detailed-pipeline run must append a metrics footer"
    );
    let _ = std::fs::remove_file(&ledger);
}

/// Restore profiler/checkpoint defaults after a matrix test, even on a
/// failed assertion mid-matrix.
struct MatrixNeutral;
impl Drop for MatrixNeutral {
    fn drop(&mut self) {
        sim_obs::profile::set_enabled(None);
        techniques::checkpoint::set_enabled(true);
        sim_exec::set_shards(0);
    }
}

/// The stage profiler must be invisible in the results: `SIM_PROFILE`
/// {off,on} x shards {1,3} x checkpoints {on,off} all print byte-identical
/// fig2 reports (fig5 re-checked on the profile axis). Every run starts
/// from cold reuse tiers so byte-identity is earned by execution, not by
/// the run cache replaying the first result.
#[test]
fn profiling_matrix_is_byte_identical() {
    let _guard = global_state_lock();
    let _neutral = Neutral;
    let _matrix = MatrixNeutral;

    let mut baseline: Option<String> = None;
    for profile in [false, true] {
        for shards in ["1", "3"] {
            for checkpoints in ["on", "off"] {
                sim_obs::profile::set_enabled(Some(profile));
                techniques::cache::clear_all();
                let report = run_experiment(
                    "fig2",
                    &tiny_args(&["--shards", shards, "--checkpoints", checkpoints]),
                );
                match &baseline {
                    None => baseline = Some(report),
                    Some(base) => assert_eq!(
                        base, &report,
                        "fig2 report changed at SIM_PROFILE={} shards={shards} \
                         checkpoints={checkpoints}",
                        profile as u8
                    ),
                }
            }
        }
    }

    let mut fig5_baseline: Option<String> = None;
    for profile in [false, true] {
        sim_obs::profile::set_enabled(Some(profile));
        techniques::cache::clear_all();
        let report = run_experiment("fig5", &tiny_args(&[]));
        match &fig5_baseline {
            None => fig5_baseline = Some(report),
            Some(base) => assert_eq!(base, &report, "fig5 report changed under SIM_PROFILE=1"),
        }
    }
}

/// A profiled, traced run must emit schema-valid `meta:"profile"` and
/// histogram footer records — validated in-process by the same code
/// `simreport --check` runs.
#[test]
fn simreport_validates_profile_and_histogram_footers() {
    let _guard = global_state_lock();
    let _neutral = Neutral;
    let _matrix = MatrixNeutral;
    let ledger = tmp("profile.jsonl");
    let ledger_s = ledger.to_string_lossy().into_owned();
    let _ = std::fs::remove_file(&ledger);

    sim_obs::profile::set_enabled(Some(true));
    techniques::cache::clear_all();
    let _ = run_experiment("fig2", &tiny_args(&["--trace-out", &ledger_s]));

    let ok = experiments::report::check(std::slice::from_ref(&ledger_s))
        .expect("profiled ledger passes simreport --check");
    assert!(ok.contains("metrics footers"), "{ok}");
    assert!(ok.contains("profile footers"), "{ok}");

    let parsed = experiments::report::load(&[ledger_s]).expect("ledger loads");
    assert!(
        parsed.hists.contains_key("hist.pipeline.refill_insts"),
        "decode-refill histogram reaches the ledger: {:?}",
        parsed.hists.keys().collect::<Vec<_>>()
    );
    assert!(parsed.profile.footers >= 1);
    assert!(parsed.profile.runs > 0, "profiled runs recorded");
    let attributed: u64 = parsed.profile.attributed.values().sum();
    assert!(
        attributed > 0 && attributed <= parsed.profile.wall_ns,
        "attribution is positive and bounded by wall ({attributed} vs {})",
        parsed.profile.wall_ns
    );
    let _ = std::fs::remove_file(&ledger);
}

/// The PR 4 inflated-totals bug class, extended to the new accumulators:
/// two identical in-process sweeps separated by `cache::clear_all` must
/// observe identical metrics — histogram counts must not carry over, and
/// the profiler's iteration counts must restart from zero.
#[test]
fn back_to_back_sweeps_observe_identical_metrics() {
    let _guard = global_state_lock();
    let _neutral = Neutral;
    let _matrix = MatrixNeutral;
    let opts = tiny_args(&[]);

    // Deterministic projection of the observability state after a sweep:
    // full snapshots for value-deterministic histograms (instruction and
    // cycle counts), record counts for wall-time histograms, and the
    // profiler's deterministic sampling counters.
    fn observe() -> String {
        let mut out = String::new();
        for (name, h) in sim_obs::metrics::histogram_snapshots() {
            let deterministic =
                name.ends_with("refill_insts") || name.ends_with("idle_jump_cycles");
            if deterministic {
                out.push_str(&format!(
                    "{name}: {:?}\n",
                    (h.count, h.sum, h.max, &h.buckets)
                ));
            } else {
                out.push_str(&format!("{name}: count {}\n", h.count));
            }
        }
        let p = sim_obs::profile::snapshot();
        out.push_str(&format!(
            "profile: iters {} sampled {} runs {}\n",
            p.iters, p.sampled, p.runs
        ));
        out
    }

    sim_obs::profile::set_enabled(Some(true));
    techniques::cache::clear_all();
    // Call the harness body directly (not run_experiment): the drop guard
    // there resets this state before we could observe it.
    let report1 = experiments::fig2::run(&opts);
    let sweep1 = observe();

    techniques::cache::clear_all();
    assert_eq!(
        observe(),
        "profile: iters 0 sampled 0 runs 0\n",
        "clear_all must empty every histogram and the profiler"
    );

    let report2 = experiments::fig2::run(&opts);
    let sweep2 = observe();
    techniques::cache::clear_all();

    assert_eq!(report1, report2, "sweeps are byte-identical");
    assert!(
        sweep1.contains("hist.pipeline.refill_insts"),
        "sweep populated the refill histogram: {sweep1}"
    );
    assert!(sweep1.contains("iters") && !sweep1.starts_with("profile: iters 0"));
    assert_eq!(
        sweep1, sweep2,
        "second sweep must observe identical metrics, not inflated carryover"
    );
}

/// The ledger's deterministic fields (run key, cost, CPI) must agree
/// between a serial and a heavily parallel run: same records, any order.
#[test]
fn ledger_is_semantically_equal_across_job_counts() {
    let _guard = global_state_lock();
    let _neutral = Neutral;
    let (p1, p8) = (tmp("jobs1.jsonl"), tmp("jobs8.jsonl"));
    let (p1_s, p8_s) = (
        p1.to_string_lossy().into_owned(),
        p8.to_string_lossy().into_owned(),
    );
    let _ = std::fs::remove_file(&p1);
    let _ = std::fs::remove_file(&p8);

    techniques::cache::global().clear();
    let serial = run_experiment(
        "fig2",
        &Opts::from_args([
            "--scale",
            "0.05",
            "--bench",
            "gzip",
            "--jobs",
            "1",
            "--trace-out",
            &p1_s,
        ]),
    );
    techniques::cache::global().clear();
    let parallel = run_experiment(
        "fig2",
        &Opts::from_args([
            "--scale",
            "0.05",
            "--bench",
            "gzip",
            "--jobs",
            "8",
            "--trace-out",
            &p8_s,
        ]),
    );
    assert_eq!(serial, parallel, "fig2 report is jobs-independent");

    let (a, b) = (projections(&p1), projections(&p8));
    assert!(!a.is_empty());
    assert_eq!(
        a, b,
        "ledger record multisets must agree between --jobs 1 and --jobs 8"
    );
    let _ = std::fs::remove_file(&p1);
    let _ = std::fs::remove_file(&p8);
}
