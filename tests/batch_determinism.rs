//! Golden batch-invariance tests: the fetch-ahead decode buffer
//! (`SIM_FETCH_BATCH`) and the pre-decoded basic-block trace cache
//! (`SIM_TRACE_CACHE` / `SIM_TRACE_CACHE_MB`) are pure host-side
//! optimizations, so no observable output — harness reports, technique
//! metrics and costs, checkpoint state — may depend on the batch size,
//! on whether the cache is enabled, or on its byte budget.

use experiments::opts::Opts;
use experiments::run_experiment;
use sim_core::SimConfig;
use techniques::checkpoint;
use techniques::runner::{run_technique, PreparedBench};
use techniques::TechniqueSpec;

/// The batch sizes under test: serial fetch, an awkward non-power-of-two,
/// the default, and a buffer larger than most sample units.
const BATCHES: [&str; 4] = ["1", "7", "64", "1024"];

/// Every test here toggles process-global state (the fetch-batch env var,
/// the checkpoint enable flag, the run cache), so they must not run
/// concurrently.
fn global_state_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn set_batch(b: &str) {
    std::env::set_var("SIM_FETCH_BATCH", b);
}

/// The acceptance criterion: the Figure 2 sweep prints a byte-identical
/// report at every batch size, with checkpoints both off and on.
#[test]
fn fig2_report_is_byte_identical_across_batch_sizes() {
    let _guard = global_state_lock();
    let args = ["--scale", "0.05", "--bench", "gzip", "--jobs", "2"];
    for ckpt in ["off", "on"] {
        let opts = Opts::from_args(args.iter().chain(&["--checkpoints", ckpt]));
        set_batch(BATCHES[0]);
        techniques::cache::clear_all();
        let golden = run_experiment("fig2", &opts);
        for batch in &BATCHES[1..] {
            set_batch(batch);
            techniques::cache::clear_all();
            let report = run_experiment("fig2", &opts);
            assert_eq!(
                golden, report,
                "fig2 (checkpoints {ckpt}) diverged at SIM_FETCH_BATCH={batch}"
            );
        }
    }
    std::env::remove_var("SIM_FETCH_BATCH");
    checkpoint::set_enabled(true);
    sim_exec::set_jobs(1);
}

/// Checkpoints populated at one batch size must restore exactly at
/// another: the serialized prefix state is batch-independent, and a
/// restored run reproduces the cold run's metrics and cost bit-for-bit.
#[test]
fn checkpoints_cross_batch_sizes_exactly() {
    let _guard = global_state_lock();
    let prep = PreparedBench::by_name_scaled("gzip", 0.1).unwrap();
    let cfg = SimConfig::table3(2);
    let specs = [
        TechniqueSpec::FfWuRun {
            x: 30_000,
            y: 5_000,
            z: 6_000,
        },
        TechniqueSpec::Smarts { u: 1_000, w: 2_000 },
        TechniqueSpec::RandomSample {
            n: 8,
            u: 1_000,
            w: 1_000,
            seed: 7,
        },
    ];
    for spec in &specs {
        // Cold truth at batch 1 (the pre-buffer behavior).
        set_batch("1");
        checkpoint::set_enabled(false);
        techniques::cache::clear_all();
        let cold = run_technique(spec, &prep, &cfg).unwrap();

        // Populate the checkpoint library at one batch size, restore from
        // it at another; both must match the cold run exactly.
        set_batch("1024");
        checkpoint::set_enabled(true);
        techniques::cache::clear_all();
        let populate = run_technique(spec, &prep, &cfg).unwrap();
        set_batch("7");
        techniques::cache::global().clear();
        let restored = run_technique(spec, &prep, &cfg).unwrap();

        for (phase, run) in [("populate@1024", &populate), ("restore@7", &restored)] {
            assert_eq!(
                cold.metrics, run.metrics,
                "{phase} metrics diverged from the batch=1 cold run for {spec:?}"
            );
            assert_eq!(
                cold.cost, run.cost,
                "{phase} cost diverged from the batch=1 cold run for {spec:?}"
            );
        }
    }
    std::env::remove_var("SIM_FETCH_BATCH");
    checkpoint::set_enabled(true);
}

/// The trace-cache matrix: fig2 and fig5 reports must be byte-identical
/// with the cache on (default budget), on with a degenerate budget
/// (`SIM_TRACE_CACHE_MB=0` clamps to a 1-byte floor, so every block
/// overflows and the stream degrades to per-block re-decode — the
/// eviction-pressure path, covered block-for-block by the `workloads`
/// unit tests), and off entirely — each crossed with `--shards` {1, 3}.
#[test]
fn fig_reports_are_byte_identical_across_trace_cache_matrix() {
    let _guard = global_state_lock();
    // (SIM_TRACE_CACHE, SIM_TRACE_CACHE_MB); the budget only exists when
    // the cache is on, so the off row is not crossed with it.
    let cache_points: [(&str, Option<&str>); 3] = [("1", None), ("1", Some("0")), ("0", None)];
    for fig in ["fig2", "fig5"] {
        let args = ["--scale", "0.05", "--bench", "gzip", "--jobs", "2"];
        std::env::remove_var("SIM_TRACE_CACHE");
        std::env::remove_var("SIM_TRACE_CACHE_MB");
        techniques::cache::clear_all();
        let golden = run_experiment(fig, &Opts::from_args(args.iter().chain(&["--shards", "1"])));
        for (cache, budget) in cache_points {
            for shards in ["1", "3"] {
                std::env::set_var("SIM_TRACE_CACHE", cache);
                match budget {
                    Some(mb) => std::env::set_var("SIM_TRACE_CACHE_MB", mb),
                    None => std::env::remove_var("SIM_TRACE_CACHE_MB"),
                }
                techniques::cache::clear_all();
                let report = run_experiment(
                    fig,
                    &Opts::from_args(args.iter().chain(&["--shards", shards])),
                );
                assert_eq!(
                    golden, report,
                    "{fig} diverged at SIM_TRACE_CACHE={cache} \
                     SIM_TRACE_CACHE_MB={budget:?} --shards {shards}"
                );
            }
        }
    }
    std::env::remove_var("SIM_TRACE_CACHE");
    std::env::remove_var("SIM_TRACE_CACHE_MB");
    sim_exec::set_jobs(1);
}

/// The refill counters land in the metrics registry, and a larger batch
/// strictly reduces the number of refills for the same instruction count.
#[test]
fn refill_counters_track_batch_size() {
    let _guard = global_state_lock();
    let prep = PreparedBench::by_name_scaled("gzip", 0.05).unwrap();
    let cfg = SimConfig::table3(1);
    let spec = TechniqueSpec::RunZ { z: 20_000 };
    let refills = sim_obs::metrics::counter("pipeline.batch_refills");
    let refills_at = |batch: &str| {
        set_batch(batch);
        techniques::cache::clear_all();
        refills.reset();
        run_technique(&spec, &prep, &cfg).unwrap();
        refills.get()
    };
    let serial = refills_at("1");
    let batched = refills_at("64");
    assert!(
        serial > batched && batched > 0,
        "batch=64 must refill strictly less often than batch=1 ({serial} vs {batched})"
    );
    std::env::remove_var("SIM_FETCH_BATCH");
}
