//! Property-based tests (proptest) over the core data structures and
//! invariants of the reproduction.

use proptest::prelude::*;
use simtech_repro::sim_core::cache::Cache;
use simtech_repro::sim_core::config::{pb, CacheConfig, SimConfig};
use simtech_repro::sim_core::isa::{DynInst, InstStream, OpClass};
use simtech_repro::sim_core::Simulator;
use simtech_repro::simstats::histogram::ErrorHistogram;
use simtech_repro::simstats::kmeans::kmeans;
use simtech_repro::simstats::pb::{max_rank_distance, rank_by_magnitude, PbDesign};
use simtech_repro::simstats::{euclidean, manhattan};
use std::collections::HashSet;

/// A simple reference model of a fully-associative LRU cache of N lines,
/// used to cross-check the real set-associative cache with assoc == sets*ways
/// collapsed to one set.
#[derive(Debug)]
struct LruModel {
    lines: Vec<u64>,
    capacity: usize,
}

impl LruModel {
    fn new(capacity: usize) -> Self {
        LruModel {
            lines: Vec::new(),
            capacity,
        }
    }
    /// Returns hit?
    fn access(&mut self, line: u64) -> bool {
        if let Some(i) = self.lines.iter().position(|&l| l == line) {
            self.lines.remove(i);
            self.lines.push(line);
            true
        } else {
            if self.lines.len() == self.capacity {
                self.lines.remove(0);
            }
            self.lines.push(line);
            false
        }
    }
}

proptest! {
    /// The set-associative cache with a single set behaves exactly like a
    /// textbook fully-associative LRU.
    #[test]
    fn cache_single_set_matches_lru_model(
        accesses in proptest::collection::vec(0u64..32, 1..400),
        ways in 1u32..=8,
    ) {
        let cfg = CacheConfig {
            size_bytes: 64 * u64::from(ways),
            assoc: ways,
            line_bytes: 64,
            latency: 1,
        };
        let mut cache = Cache::new(cfg);
        let mut model = LruModel::new(ways as usize);
        for &a in &accesses {
            let addr = a * 64;
            let hit = cache.access(addr, false).hit;
            let model_hit = model.access(a);
            prop_assert_eq!(hit, model_hit, "divergence at line {}", a);
        }
    }

    /// Cache statistics identity: accesses = hits + misses, and valid lines
    /// never exceed capacity.
    #[test]
    fn cache_stats_identities(
        accesses in proptest::collection::vec(0u64..4096, 1..500),
    ) {
        let mut cache = Cache::new(CacheConfig::new(8, 2, 64, 1)); // 8 KB
        for &a in &accesses {
            cache.access(a * 8, a % 3 == 0);
        }
        let s = *cache.stats();
        prop_assert_eq!(s.accesses, accesses.len() as u64);
        prop_assert!(s.misses <= s.accesses);
        prop_assert!(cache.valid_lines() <= 8 * 1024 / 64);
    }

    /// PB designs stay balanced and orthogonal for every supported factor
    /// count, with and without foldover.
    #[test]
    fn pb_designs_balanced_orthogonal(factors in 2usize..60, fold in any::<bool>()) {
        let mut d = PbDesign::new(factors);
        if fold {
            d = d.with_foldover();
        }
        let runs = d.num_runs();
        for f in 0..d.num_factors() {
            let highs = (0..runs).filter(|&r| d.level(r, f)).count();
            prop_assert_eq!(highs * 2, runs, "factor {} unbalanced", f);
        }
        // Spot-check orthogonality on a few pairs (full check is O(n^3)).
        for (a, b) in [(0, 1), (0, factors - 1), (factors / 2, factors - 1)] {
            if a == b { continue; }
            let dot: i64 = (0..runs)
                .map(|r| {
                    let x: i64 = if d.level(r, a) { 1 } else { -1 };
                    let y: i64 = if d.level(r, b) { 1 } else { -1 };
                    x * y
                })
                .sum();
            prop_assert_eq!(dot, 0);
        }
    }

    /// Ranks are always a permutation of 1..=n.
    #[test]
    fn ranks_are_a_permutation(effects in proptest::collection::vec(-1e6f64..1e6, 1..64)) {
        let ranks = rank_by_magnitude(&effects);
        let mut seen: Vec<u64> = ranks.iter().map(|&r| r as u64).collect();
        seen.sort_unstable();
        let expect: Vec<u64> = (1..=effects.len() as u64).collect();
        prop_assert_eq!(seen, expect);
    }

    /// Any two rank permutations are within the analytic maximum distance.
    #[test]
    fn rank_distance_never_exceeds_max(
        perm in Just((1..=20u64).collect::<Vec<_>>()).prop_shuffle(),
    ) {
        let a: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        let b: Vec<f64> = perm.iter().map(|&i| i as f64).collect();
        let d = euclidean(&a, &b);
        prop_assert!(d <= max_rank_distance(20) + 1e-9);
    }

    /// Metric distances: Manhattan >= Euclidean >= 0, both zero iff equal.
    #[test]
    fn distance_relations(
        a in proptest::collection::vec(-100f64..100.0, 4),
        b in proptest::collection::vec(-100f64..100.0, 4),
    ) {
        let e = euclidean(&a, &b);
        let m = manhattan(&a, &b);
        prop_assert!(e >= 0.0 && m >= 0.0);
        prop_assert!(m + 1e-12 >= e);
        if a == b {
            prop_assert_eq!(e, 0.0);
        }
    }

    /// k-means invariants: every point is assigned to its nearest centroid's
    /// cluster no worse than any other cluster, and inertia is finite.
    #[test]
    fn kmeans_assigns_nearest(
        points in proptest::collection::vec(
            proptest::collection::vec(-10f64..10.0, 2), 3..40),
        k in 1usize..5,
    ) {
        let c = kmeans(&points, k, 30, 42);
        prop_assert!(c.inertia.is_finite());
        for (p, &a) in points.iter().zip(&c.assignments) {
            let da: f64 = p.iter().zip(&c.centroids[a]).map(|(x, y)| (x - y) * (x - y)).sum();
            for cent in &c.centroids {
                let d: f64 = p.iter().zip(cent).map(|(x, y)| (x - y) * (x - y)).sum();
                prop_assert!(da <= d + 1e-9, "point not assigned to nearest centroid");
            }
        }
    }

    /// Histogram totals always match the number of recorded errors.
    #[test]
    fn histogram_conserves_mass(errors in proptest::collection::vec(-200f64..200.0, 0..100)) {
        let mut h = ErrorHistogram::new();
        for &e in &errors {
            h.record(e);
        }
        prop_assert_eq!(h.total(), errors.len() as u64);
        let sum: u64 = h.counts().iter().sum();
        prop_assert_eq!(sum, errors.len() as u64);
    }

    /// The simulator commits exactly the instructions it is fed (never
    /// loses or duplicates work), for arbitrary small op sequences.
    #[test]
    fn simulator_conserves_instructions(ops in proptest::collection::vec(0u8..6, 1..300)) {
        let insts: Vec<DynInst> = ops
            .iter()
            .enumerate()
            .map(|(i, &o)| {
                let pc = 0x1000 + 4 * (i as u64 % 128);
                match o {
                    0 => DynInst::int_alu(pc),
                    1 => DynInst::int_alu(pc).with_op(OpClass::IntMult).with_dest(3),
                    2 => DynInst::int_alu(pc)
                        .with_op(OpClass::Load)
                        .with_dest(4)
                        .with_mem_addr(0x10_0000 + (i as u64 % 64) * 64),
                    3 => DynInst::int_alu(pc)
                        .with_op(OpClass::Store)
                        .with_srcs(4, 0)
                        .with_mem_addr(0x10_0000 + (i as u64 % 64) * 64),
                    4 => {
                        let taken = i % 3 == 0;
                        DynInst::int_alu(pc)
                            .with_op(OpClass::Branch)
                            .with_branch(taken, if taken { pc + 64 } else { pc + 4 })
                    }
                    _ => DynInst::int_alu(pc).with_op(OpClass::FpAlu).with_dest(40),
                }
            })
            .collect();
        let n = insts.len() as u64;
        let mut sim = Simulator::new(SimConfig::table3(1));
        let mut stream = insts.into_iter();
        let committed = sim.run_detailed(&mut stream, u64::MAX);
        prop_assert_eq!(committed, n);
        prop_assert_eq!(sim.stats().core.committed, n);
        prop_assert!(sim.stats().core.cycles >= n / 4, "IPC cannot exceed width");
    }

    /// Every PB row yields a valid machine configuration.
    #[test]
    fn pb_rows_always_validate(row_idx in 0usize..88) {
        let d = PbDesign::new(pb::NUM_PARAMETERS).with_foldover();
        let cfg = pb::config_for_row(&SimConfig::default(), &d.run_levels(row_idx % d.num_runs()));
        prop_assert!(cfg.validate().is_ok());
    }
}

/// Workload streams are identical across repeated interpretation — checked
/// over every benchmark (not proptest, but a sweep).
#[test]
fn every_benchmark_stream_is_reproducible_prefix() {
    for b in simtech_repro::workloads::suite() {
        let p = b
            .program_scaled(simtech_repro::workloads::InputSet::Reference, 0.02)
            .unwrap();
        let take = |n: usize| {
            let mut it = simtech_repro::workloads::Interp::new(&p);
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                match it.next_inst() {
                    Some(i) => v.push(i),
                    None => break,
                }
            }
            v
        };
        assert_eq!(take(5_000), take(5_000), "{} diverged", b.name);
    }
}

/// Distinct benchmarks produce distinct dynamic behaviour (no two identical
/// first-10k streams).
#[test]
fn benchmarks_are_pairwise_distinct() {
    let mut prefixes = Vec::new();
    for b in simtech_repro::workloads::suite() {
        let p = b
            .program_scaled(simtech_repro::workloads::InputSet::Reference, 0.02)
            .unwrap();
        let mut it = simtech_repro::workloads::Interp::new(&p);
        let mut sig = Vec::new();
        for _ in 0..10_000 {
            match it.next_inst() {
                Some(i) => sig.push((i.pc, i.op as u8, i.mem_addr)),
                None => break,
            }
        }
        prefixes.push((b.name, sig));
    }
    let mut seen = HashSet::new();
    for (name, sig) in &prefixes {
        assert!(
            seen.insert(format!("{sig:?}")),
            "{name} duplicates another benchmark's stream"
        );
    }
}
