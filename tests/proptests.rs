//! Randomized property tests over the core data structures and invariants of
//! the reproduction.
//!
//! These were originally written with `proptest`; they now use a local
//! deterministic generator (the tier-1 build must work with no network
//! access, so the workspace carries no external dev-dependencies). Each
//! property is checked over a fixed-seed sweep of generated cases, which
//! keeps the same invariant coverage while making every run reproducible.

use simtech_repro::sim_core::cache::Cache;
use simtech_repro::sim_core::config::{pb, CacheConfig, SimConfig};
use simtech_repro::sim_core::isa::{DynInst, InstStream, OpClass};
use simtech_repro::sim_core::Simulator;
use simtech_repro::simstats::histogram::ErrorHistogram;
use simtech_repro::simstats::kmeans::kmeans;
use simtech_repro::simstats::pb::{max_rank_distance, rank_by_magnitude, PbDesign};
use simtech_repro::simstats::{euclidean, manhattan};
use std::collections::HashSet;

/// SplitMix64: a tiny deterministic generator for the case sweeps.
struct Gen(u64);

impl Gen {
    fn new(seed: u64) -> Self {
        Gen(seed)
    }

    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, bound)`.
    fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound.max(1)
    }

    /// Uniform in `[lo, hi)`.
    fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        lo + unit * (hi - lo)
    }

    fn vec_u64(&mut self, len: usize, bound: u64) -> Vec<u64> {
        (0..len).map(|_| self.below(bound)).collect()
    }

    fn vec_f64(&mut self, len: usize, lo: f64, hi: f64) -> Vec<f64> {
        (0..len).map(|_| self.range_f64(lo, hi)).collect()
    }

    /// Fisher–Yates shuffle.
    fn shuffle<T>(&mut self, v: &mut [T]) {
        for i in (1..v.len()).rev() {
            v.swap(i, self.below(i as u64 + 1) as usize);
        }
    }
}

/// A simple reference model of a fully-associative LRU cache of N lines,
/// used to cross-check the real set-associative cache with assoc == sets*ways
/// collapsed to one set.
#[derive(Debug)]
struct LruModel {
    lines: Vec<u64>,
    capacity: usize,
}

impl LruModel {
    fn new(capacity: usize) -> Self {
        LruModel {
            lines: Vec::new(),
            capacity,
        }
    }
    /// Returns hit?
    fn access(&mut self, line: u64) -> bool {
        if let Some(i) = self.lines.iter().position(|&l| l == line) {
            self.lines.remove(i);
            self.lines.push(line);
            true
        } else {
            if self.lines.len() == self.capacity {
                self.lines.remove(0);
            }
            self.lines.push(line);
            false
        }
    }
}

/// The set-associative cache with a single set behaves exactly like a
/// textbook fully-associative LRU.
#[test]
fn cache_single_set_matches_lru_model() {
    let mut g = Gen::new(0xcac4e);
    for case in 0..64 {
        let ways = 1 + (case % 8) as u32;
        let n = 1 + g.below(399) as usize;
        let accesses = g.vec_u64(n, 32);
        let cfg = CacheConfig {
            size_bytes: 64 * u64::from(ways),
            assoc: ways,
            line_bytes: 64,
            latency: 1,
        };
        let mut cache = Cache::new(cfg);
        let mut model = LruModel::new(ways as usize);
        for &a in &accesses {
            let addr = a * 64;
            let hit = cache.access(addr, false).hit;
            let model_hit = model.access(a);
            assert_eq!(hit, model_hit, "divergence at line {a} (ways {ways})");
        }
    }
}

/// Cache statistics identity: accesses = hits + misses, and valid lines
/// never exceed capacity.
#[test]
fn cache_stats_identities() {
    let mut g = Gen::new(0x57a75);
    for _ in 0..32 {
        let n = 1 + g.below(499) as usize;
        let accesses = g.vec_u64(n, 4096);
        let mut cache = Cache::new(CacheConfig::new(8, 2, 64, 1)); // 8 KB
        for &a in &accesses {
            cache.access(a * 8, a % 3 == 0);
        }
        let s = *cache.stats();
        assert_eq!(s.accesses, accesses.len() as u64);
        assert!(s.misses <= s.accesses);
        assert!(cache.valid_lines() <= 8 * 1024 / 64);
    }
}

/// PB designs stay balanced and orthogonal for every supported factor
/// count, with and without foldover.
#[test]
fn pb_designs_balanced_orthogonal() {
    for factors in 2usize..60 {
        for fold in [false, true] {
            let mut d = PbDesign::new(factors);
            if fold {
                d = d.with_foldover();
            }
            let runs = d.num_runs();
            for f in 0..d.num_factors() {
                let highs = (0..runs).filter(|&r| d.level(r, f)).count();
                assert_eq!(highs * 2, runs, "factor {f} unbalanced");
            }
            // Spot-check orthogonality on a few pairs (full check is O(n^3)).
            for (a, b) in [(0, 1), (0, factors - 1), (factors / 2, factors - 1)] {
                if a == b {
                    continue;
                }
                let dot: i64 = (0..runs)
                    .map(|r| {
                        let x: i64 = if d.level(r, a) { 1 } else { -1 };
                        let y: i64 = if d.level(r, b) { 1 } else { -1 };
                        x * y
                    })
                    .sum();
                assert_eq!(dot, 0);
            }
        }
    }
}

/// Ranks are always a permutation of 1..=n.
#[test]
fn ranks_are_a_permutation() {
    let mut g = Gen::new(0x4a11c5);
    for _ in 0..64 {
        let n = 1 + g.below(63) as usize;
        let effects = g.vec_f64(n, -1e6, 1e6);
        let ranks = rank_by_magnitude(&effects);
        let mut seen: Vec<u64> = ranks.iter().map(|&r| r as u64).collect();
        seen.sort_unstable();
        let expect: Vec<u64> = (1..=effects.len() as u64).collect();
        assert_eq!(seen, expect);
    }
}

/// Any two rank permutations are within the analytic maximum distance.
#[test]
fn rank_distance_never_exceeds_max() {
    let mut g = Gen::new(0xd157);
    for _ in 0..64 {
        let mut perm: Vec<u64> = (1..=20).collect();
        g.shuffle(&mut perm);
        let a: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        let b: Vec<f64> = perm.iter().map(|&i| i as f64).collect();
        let d = euclidean(&a, &b);
        assert!(d <= max_rank_distance(20) + 1e-9);
    }
}

/// Metric distances: Manhattan >= Euclidean >= 0, both zero iff equal.
#[test]
fn distance_relations() {
    let mut g = Gen::new(0xd15_7a9c);
    for case in 0..64 {
        let a = g.vec_f64(4, -100.0, 100.0);
        let b = if case % 5 == 0 {
            a.clone()
        } else {
            g.vec_f64(4, -100.0, 100.0)
        };
        let e = euclidean(&a, &b);
        let m = manhattan(&a, &b);
        assert!(e >= 0.0 && m >= 0.0);
        assert!(m + 1e-12 >= e);
        if a == b {
            assert_eq!(e, 0.0);
        }
    }
}

/// k-means invariants: every point is assigned to its nearest centroid's
/// cluster no worse than any other cluster, and inertia is finite.
#[test]
fn kmeans_assigns_nearest() {
    let mut g = Gen::new(0x4bea15);
    for _ in 0..24 {
        let n = 3 + g.below(37) as usize;
        let points: Vec<Vec<f64>> = (0..n).map(|_| g.vec_f64(2, -10.0, 10.0)).collect();
        let k = 1 + g.below(4) as usize;
        let c = kmeans(&points, k, 30, 42);
        assert!(c.inertia.is_finite());
        for (p, &a) in points.iter().zip(&c.assignments) {
            let da: f64 = p
                .iter()
                .zip(&c.centroids[a])
                .map(|(x, y)| (x - y) * (x - y))
                .sum();
            for cent in &c.centroids {
                let d: f64 = p.iter().zip(cent).map(|(x, y)| (x - y) * (x - y)).sum();
                assert!(da <= d + 1e-9, "point not assigned to nearest centroid");
            }
        }
    }
}

/// Histogram totals always match the number of recorded errors.
#[test]
fn histogram_conserves_mass() {
    let mut g = Gen::new(0x415709);
    for _ in 0..32 {
        let n = g.below(100) as usize;
        let errors = g.vec_f64(n, -200.0, 200.0);
        let mut h = ErrorHistogram::new();
        for &e in &errors {
            h.record(e);
        }
        assert_eq!(h.total(), errors.len() as u64);
        let sum: u64 = h.counts().iter().sum();
        assert_eq!(sum, errors.len() as u64);
    }
}

/// The simulator commits exactly the instructions it is fed (never
/// loses or duplicates work), for arbitrary small op sequences.
#[test]
fn simulator_conserves_instructions() {
    let mut g = Gen::new(0x51_c04e);
    for _ in 0..24 {
        let n = 1 + g.below(299) as usize;
        let ops = g.vec_u64(n, 6);
        let insts: Vec<DynInst> = ops
            .iter()
            .enumerate()
            .map(|(i, &o)| {
                let pc = 0x1000 + 4 * (i as u64 % 128);
                match o {
                    0 => DynInst::int_alu(pc),
                    1 => DynInst::int_alu(pc).with_op(OpClass::IntMult).with_dest(3),
                    2 => DynInst::int_alu(pc)
                        .with_op(OpClass::Load)
                        .with_dest(4)
                        .with_mem_addr(0x10_0000 + (i as u64 % 64) * 64),
                    3 => DynInst::int_alu(pc)
                        .with_op(OpClass::Store)
                        .with_srcs(4, 0)
                        .with_mem_addr(0x10_0000 + (i as u64 % 64) * 64),
                    4 => {
                        let taken = i % 3 == 0;
                        DynInst::int_alu(pc)
                            .with_op(OpClass::Branch)
                            .with_branch(taken, if taken { pc + 64 } else { pc + 4 })
                    }
                    _ => DynInst::int_alu(pc).with_op(OpClass::FpAlu).with_dest(40),
                }
            })
            .collect();
        let n = insts.len() as u64;
        let mut sim = Simulator::new(SimConfig::table3(1));
        let mut stream = insts.into_iter();
        let committed = sim.run_detailed(&mut stream, u64::MAX);
        assert_eq!(committed, n);
        assert_eq!(sim.stats().core.committed, n);
        assert!(sim.stats().core.cycles >= n / 4, "IPC cannot exceed width");
    }
}

/// Every PB row yields a valid machine configuration.
#[test]
fn pb_rows_always_validate() {
    let d = PbDesign::new(pb::NUM_PARAMETERS).with_foldover();
    for row_idx in 0..d.num_runs() {
        let cfg = pb::config_for_row(&SimConfig::default(), &d.run_levels(row_idx));
        assert!(cfg.validate().is_ok(), "row {row_idx} invalid");
    }
}

/// Workload streams are identical across repeated interpretation — checked
/// over every benchmark (not randomized, but a sweep).
#[test]
fn every_benchmark_stream_is_reproducible_prefix() {
    for b in simtech_repro::workloads::suite() {
        let p = b
            .program_scaled(simtech_repro::workloads::InputSet::Reference, 0.02)
            .unwrap();
        let take = |n: usize| {
            let mut it = simtech_repro::workloads::Interp::new(&p);
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                match it.next_inst() {
                    Some(i) => v.push(i),
                    None => break,
                }
            }
            v
        };
        assert_eq!(take(5_000), take(5_000), "{} diverged", b.name);
    }
}

/// Distinct benchmarks produce distinct dynamic behaviour (no two identical
/// first-10k streams).
#[test]
fn benchmarks_are_pairwise_distinct() {
    let mut prefixes = Vec::new();
    for b in simtech_repro::workloads::suite() {
        let p = b
            .program_scaled(simtech_repro::workloads::InputSet::Reference, 0.02)
            .unwrap();
        let mut it = simtech_repro::workloads::Interp::new(&p);
        let mut sig = Vec::new();
        for _ in 0..10_000 {
            match it.next_inst() {
                Some(i) => sig.push((i.pc, i.op as u8, i.mem_addr)),
                None => break,
            }
        }
        prefixes.push((b.name, sig));
    }
    let mut seen = HashSet::new();
    for (name, sig) in &prefixes {
        assert!(
            seen.insert(format!("{sig:?}")),
            "{name} duplicates another benchmark's stream"
        );
    }
}
