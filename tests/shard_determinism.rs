//! Golden shard-invariance tests: intra-run interval sharding
//! (`--shards` / `SIM_SHARDS`) is a pure host-side optimization, so no
//! observable output — harness reports, technique metrics and costs,
//! checkpoint state — may depend on the shard count. The segment grid and
//! the in-order merge are fixed by the technique parameters alone; the
//! shard count only controls how many workers walk the grid concurrently.

use experiments::opts::Opts;
use experiments::run_experiment;
use sim_core::SimConfig;
use techniques::spec::SimPointWarmup;
use workloads::InputSet;

/// The shard counts under test: serial, a couple of awkward splits, and
/// more shards than this host has cores.
const SHARDS: [&str; 4] = ["1", "2", "3", "8"];

/// Every test here toggles process-global state (the shard and jobs
/// overrides, the checkpoint enable flag, the run cache), so they must not
/// run concurrently.
fn global_state_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Restores the process-global overrides on drop, also on assert unwind,
/// so a failure here cannot cascade into later tests in this binary.
struct Neutral;

impl Drop for Neutral {
    fn drop(&mut self) {
        sim_exec::set_shards(0);
        sim_exec::set_jobs(1);
        techniques::checkpoint::set_enabled(true);
        techniques::cache::clear_all();
    }
}

/// The acceptance criterion: the Figure 2 sweep (SMARTS vs SimPoint)
/// prints a byte-identical report at every shard count, at one and at four
/// worker threads, with checkpoints both off and on.
#[test]
fn fig2_report_is_byte_identical_across_shard_and_job_counts() {
    let _guard = global_state_lock();
    let _neutral = Neutral;
    let base = ["--scale", "0.05", "--bench", "gzip"];
    for ckpt in ["off", "on"] {
        for jobs in ["1", "4"] {
            let args = |shards: &str| {
                Opts::from_args(base.iter().chain(&[
                    "--checkpoints",
                    ckpt,
                    "--jobs",
                    jobs,
                    "--shards",
                    shards,
                ]))
            };
            techniques::cache::clear_all();
            let golden = run_experiment("fig2", &args(SHARDS[0]));
            for shards in &SHARDS[1..] {
                techniques::cache::clear_all();
                let report = run_experiment("fig2", &args(shards));
                assert_eq!(
                    golden, report,
                    "fig2 (checkpoints {ckpt}, jobs {jobs}) diverged at --shards {shards}"
                );
            }
        }
    }
}

/// The config-dependence histograms (Figure 5) cover the remaining
/// techniques' merge paths; spot-check them at the widest split.
#[test]
fn fig5_report_is_byte_identical_across_shard_counts() {
    let _guard = global_state_lock();
    let _neutral = Neutral;
    let args = |shards: &str| {
        Opts::from_args([
            "--scale", "0.05", "--bench", "gzip", "--jobs", "4", "--shards", shards,
        ])
    };
    techniques::cache::clear_all();
    let golden = run_experiment("fig5", &args("1"));
    for shards in ["3", "8"] {
        techniques::cache::clear_all();
        let report = run_experiment("fig5", &args(shards));
        assert_eq!(golden, report, "fig5 diverged at --shards {shards}");
    }
}

/// Direct-API equivalence on the main thread, where `shard_map` actually
/// fans out (inside the harness pool the scheduler runs shards serially on
/// the claiming worker): every sampled technique returns bit-identical
/// metrics and cost at every shard count.
#[test]
fn direct_technique_calls_are_bit_identical_across_shard_counts() {
    let _guard = global_state_lock();
    let _neutral = Neutral;
    let program = workloads::benchmark("gzip")
        .unwrap()
        .program_scaled(InputSet::Small, 0.1)
        .unwrap();
    let cfg = SimConfig::table3(2);
    sim_exec::set_jobs(4);

    let run_all = || {
        techniques::cache::clear_all();
        let s = techniques::smarts::run_smarts(&program, &cfg, 500, 1_000);
        let r = techniques::random_sample::run_random_sampling(&program, &cfg, 12, 500, 500, 7);
        let plan = techniques::simpoint::plan(&program, 50_000, 6);
        let p = techniques::simpoint::run_with_plan(
            &plan,
            &program,
            &cfg,
            SimPointWarmup::Functional(100_000),
        );
        (
            (s.metrics, s.cost, s.n_samples, s.runs),
            (r.metrics, r.cost, r.n_samples),
            p,
        )
    };

    sim_exec::set_shards(1);
    let golden = run_all();
    for shards in [2, 3, 8] {
        sim_exec::set_shards(shards);
        let got = run_all();
        assert_eq!(
            golden.0, got.0,
            "SMARTS diverged at {shards} shards (4 jobs)"
        );
        assert_eq!(
            golden.1, got.1,
            "random sampling diverged at {shards} shards (4 jobs)"
        );
        assert_eq!(
            golden.2, got.2,
            "SimPoint diverged at {shards} shards (4 jobs)"
        );
    }
}
