//! Cross-crate integration tests: the paper's headline conclusions must
//! hold end-to-end on scaled-down runs.

use simtech_repro::characterize::speedup::{apparent_speedup, Enhancement};
use simtech_repro::sim_core::SimConfig;
use simtech_repro::techniques::runner::{run_technique, PreparedBench};
use simtech_repro::techniques::TechniqueSpec;
use simtech_repro::workloads::InputSet;

const SCALE: f64 = 0.1;

fn prep(name: &str) -> PreparedBench {
    PreparedBench::by_name_scaled(name, SCALE).expect("benchmark exists")
}

fn cpi_error(spec: &TechniqueSpec, prep: &PreparedBench, cfg: &SimConfig, ref_cpi: f64) -> f64 {
    let r = run_technique(spec, prep, cfg).expect("technique runs");
    ((r.metrics.cpi - ref_cpi) / ref_cpi).abs()
}

/// §5/§6: sampling techniques are far more accurate than truncated execution
/// and reduced inputs — the paper's central conclusion.
#[test]
fn sampling_beats_truncation_beats_nothing() {
    let cfg = SimConfig::table3(2);
    for bench in ["gzip", "mcf"] {
        let p = prep(bench);
        let ref_cpi = run_technique(&TechniqueSpec::Reference, &p, &cfg)
            .unwrap()
            .metrics
            .cpi;
        let len = p.reference_len();
        let smarts = cpi_error(
            &TechniqueSpec::Smarts { u: 1_000, w: 2_000 },
            &p,
            &cfg,
            ref_cpi,
        );
        let simpoint = cpi_error(
            &TechniqueSpec::SimPoint {
                interval: len / 40,
                max_k: 10,
                warmup: simtech_repro::techniques::registry::simpoint_warmup(SCALE),
            },
            &p,
            &cfg,
            ref_cpi,
        );
        let run_z = cpi_error(&TechniqueSpec::RunZ { z: len / 5 }, &p, &cfg, ref_cpi);
        let reduced = cpi_error(&TechniqueSpec::Reduced(InputSet::Small), &p, &cfg, ref_cpi);

        // Thresholds are loose because at 0.1 stream scale the *reference's*
        // cold-start (absent from warmed sampling runs) is itself a few
        // percent of its cycles.
        assert!(
            smarts < 0.09,
            "{bench}: SMARTS error {:.1}% too large",
            smarts * 100.0
        );
        assert!(
            simpoint < 0.12,
            "{bench}: SimPoint error {:.1}% too large",
            simpoint * 100.0
        );
        assert!(
            smarts < run_z && simpoint < run_z,
            "{bench}: sampling ({smarts:.4}/{simpoint:.4}) must beat Run Z ({run_z:.4})"
        );
        assert!(
            run_z < reduced,
            "{bench}: even truncation should beat the small reduced input \
             ({run_z:.4} vs {reduced:.4})"
        );
    }
}

/// Reduced inputs "effectively simulate a different program": their CPI is
/// wildly wrong for the memory-bound benchmark because the working set
/// shrinks (§5.1's mcf analysis).
#[test]
fn reduced_inputs_underestimate_memory_boundedness() {
    let cfg = SimConfig::table3(2);
    // A longer stream than the other tests: at very small scales mcf's
    // reference only partially covers its chase working set and the
    // reduced-input gap narrows.
    let p = PreparedBench::by_name_scaled("mcf", 0.25).expect("mcf exists");
    let ref_cpi = run_technique(&TechniqueSpec::Reference, &p, &cfg)
        .unwrap()
        .metrics
        .cpi;
    let small = run_technique(&TechniqueSpec::Reduced(InputSet::Small), &p, &cfg)
        .unwrap()
        .metrics
        .cpi;
    assert!(
        small < ref_cpi * 0.6,
        "mcf/small CPI {small:.2} should be far below reference {ref_cpi:.2}"
    );
}

/// The whole pipeline is deterministic: identical runs give identical
/// numbers (the property every cross-technique comparison relies on).
#[test]
fn full_stack_is_deterministic() {
    let cfg = SimConfig::table3(1);
    let spec = TechniqueSpec::Smarts { u: 500, w: 1_000 };
    let run = || {
        let p = prep("gcc");
        let r = run_technique(&spec, &p, &cfg).unwrap();
        (r.metrics.cpi, r.metrics.measured_insts, r.cost)
    };
    assert_eq!(run(), run());
}

/// Techniques see the *same* stream: FF 0 + Run Z equals Run Z exactly.
#[test]
fn ff_zero_equals_run_z() {
    let cfg = SimConfig::table3(1);
    let p = prep("gzip");
    let a = run_technique(&TechniqueSpec::RunZ { z: 50_000 }, &p, &cfg).unwrap();
    let b = run_technique(&TechniqueSpec::FfRun { x: 0, z: 50_000 }, &p, &cfg).unwrap();
    assert_eq!(a.metrics.cpi, b.metrics.cpi);
    assert_eq!(a.metrics.measured_insts, b.metrics.measured_insts);
}

/// §7: next-line prefetching helps streaming workloads on the reference and
/// the speedup a good sampling technique reports is close to the truth.
#[test]
fn nlp_speedup_error_is_small_for_smarts() {
    let cfg = SimConfig::table3(2);
    let p = prep("gzip");
    let ref_s = apparent_speedup(
        &TechniqueSpec::Reference,
        &p,
        &cfg,
        Enhancement::NextLinePrefetch,
    )
    .unwrap();
    assert!(ref_s > 1.05, "gzip NLP reference speedup {ref_s}");
    let smarts_s = apparent_speedup(
        &TechniqueSpec::Smarts { u: 1_000, w: 2_000 },
        &p,
        &cfg,
        Enhancement::NextLinePrefetch,
    )
    .unwrap();
    assert!(
        (smarts_s - ref_s).abs() < 0.05,
        "SMARTS speedup {smarts_s} vs reference {ref_s}"
    );
}

/// Costs are internally consistent: measured instructions are part of
/// detailed cost, and no technique is more expensive than ~3x reference.
#[test]
fn cost_accounting_is_consistent() {
    let cfg = SimConfig::table3(1);
    let p = prep("gzip");
    let len = p.reference_len();
    for spec in simtech_repro::techniques::registry::quick_permutations(SCALE) {
        let Some(r) = run_technique(&spec, &p, &cfg) else {
            continue;
        };
        assert!(
            r.cost.detailed >= r.metrics.measured_insts,
            "{}: detailed {} < measured {}",
            spec.label(),
            r.cost.detailed,
            r.metrics.measured_insts
        );
        let pct = r.cost.percent_of_reference(len);
        assert!(
            pct < 300.0,
            "{}: cost {pct}% of reference is implausible",
            spec.label()
        );
    }
}

/// Table 2's N/A cells propagate: every unavailable (benchmark, input) pair
/// yields `None` from the runner and is silently skipped by analyses.
#[test]
fn na_cells_propagate_through_runner() {
    let cfg = SimConfig::table3(1);
    for (bench, input) in [
        ("art", InputSet::Small),
        ("mcf", InputSet::Medium),
        ("gcc", InputSet::Large),
        ("perlbmk", InputSet::Test),
    ] {
        let p = prep(bench);
        assert!(
            run_technique(&TechniqueSpec::Reduced(input), &p, &cfg).is_none(),
            "{bench}/{input:?} should be N/A"
        );
    }
}
