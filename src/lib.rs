//! Umbrella crate for the HPCA 2005 "Characterizing and Comparing Prevailing
//! Simulation Techniques" reproduction.
//!
//! Re-exports the workspace crates so examples and integration tests can use a
//! single dependency. See the individual crates for the real API:
//!
//! - [`sim_core`] — the cycle-level out-of-order processor simulator.
//! - [`sim_exec`] — the parallel fan-out and intra-run shard scheduler.
//! - [`workloads`] — the synthetic SPEC CPU2000 stand-in benchmark suite.
//! - [`simstats`] — Plackett–Burman designs, χ², k-means, distances.
//! - [`techniques`] — the six simulation techniques under study.
//! - [`characterize`] — the three characterization methods and analyses.

pub use characterize;
pub use sim_core;
pub use sim_exec;
pub use simstats;
pub use techniques;
pub use workloads;
